//! Continuous performance-regression harness.
//!
//! `experiments bench` runs a fixed workload — the crawl plus a small set
//! of representative figures — with the full observability stack armed
//! (metrics, causal tracing, series sampling) and records per-stage wall
//! time, event/span/sample throughput, and memory footprint into a
//! `BENCH_<label>.json` document. `experiments bench-diff a b` compares
//! two such documents and exits non-zero when stage wall time regressed
//! beyond a configurable noise threshold, so CI can hold the line against
//! a committed `BENCH_baseline.json`.
//!
//! `--figs` narrows the workload to a chosen stage set (surfaced in the
//! artifact under `"figs"`), and `--scale-sweep` additionally runs one
//! representative simulation at increasing network sizes and records a
//! `"scale_curve"`: per-point `rss_per_node`, `events_per_s`, and
//! `allocs_per_event`. `bench-diff` compares curves point-by-point and
//! also fits a log-log slope to `rss_per_node` vs nodes — per-node memory
//! should stay flat as the network grows, so a slope above
//! [`MAX_RSS_SLOPE`] (or well above the baseline's) means total memory
//! grows super-linearly and fails the diff even when every individual
//! point is within threshold.
//!
//! Wall time and memory are machine-dependent: a committed baseline only
//! gates CI with a generous threshold (the `ci.sh` run uses 4.0 — a 5×
//! slowdown — to catch pathological regressions, not scheduler noise).

use crate::eval_figs::{run_batch_on, section4_updates_for};
use crate::perf;
use crate::scale::Scale;
use crate::{build_trace_ctx, run_figure_ctx, RunCtx};
use cdnc_core::{MethodKind, Scheme, SimConfig};
use cdnc_obs::{Json, Registry};

/// Stages of the bench workload: the shared crawl, one cheap §4 figure,
/// the §4 figure with the largest simulation fan-out, a §5 HAT figure
/// (tree topologies exercise different code paths), the request-plane
/// extension (per-edge caches and the origin-fetch path are hot loops the
/// other stages never touch), and the node-lifecycle extension (churn
/// events, waiter handoff, survival-protocol reconvergence).
pub const BENCH_FIGURES: [&str; 5] = ["fig17", "fig20", "fig24", "ext_workload", "ext_churn"];

/// Default `bench-diff` noise threshold: a stage regresses when its wall
/// time exceeds the baseline's by more than this fraction.
pub const DEFAULT_BENCH_THRESHOLD: f64 = 0.3;

/// Largest tolerated log-log slope of `rss_per_node` against nodes. Flat
/// per-node memory (linear total) has slope ≈ 0; a candidate whose fitted
/// slope exceeds this — and the baseline's own slope by
/// [`MAX_SLOPE_DELTA`] — regresses regardless of per-point thresholds.
pub const MAX_RSS_SLOPE: f64 = 0.3;

/// Slack added to the baseline's fitted slope before a candidate slope
/// counts as a regression (absorbs fit noise on small sweeps).
pub const MAX_SLOPE_DELTA: f64 = 0.15;

/// Handler means below this many nanoseconds are timer-resolution noise
/// and exempt from the per-kind dispatch-cost gate.
pub const MIN_HANDLER_MEAN_NS: f64 = 50.0;

/// Frame self-times below this many seconds are scheduling noise and
/// exempt from the per-stage self-time gate.
pub const MIN_SELF_TIME_S: f64 = 0.005;

/// Largest tolerated many-paths / few-paths ratio in the span-overhead
/// micro-benchmark. Interned O(1) span recording sits near 1; the old
/// O(paths) linear scan sat near the path-count ratio (~64×).
pub const MAX_SPAN_OVERHEAD_RATIO: f64 = 8.0;

/// Workload selection for [`run_bench_with`].
#[derive(Debug, Clone, Default)]
pub struct BenchOptions {
    /// Stages to run (`"crawl"` or figure ids); `None` runs the default
    /// workload (crawl + [`BENCH_FIGURES`]).
    pub figs: Option<Vec<String>>,
    /// Also run the scale sweep and emit a `"scale_curve"` section.
    pub scale_sweep: bool,
}

/// Whether `id` names a stage `bench --figs` accepts.
pub fn is_bench_stage(id: &str) -> bool {
    id == "crawl"
        || crate::TRACE_FIGURES.contains(&id)
        || crate::EVAL_FIGURES.contains(&id)
        || crate::HAT_FIGURES.contains(&id)
        || crate::EXT_FIGURES.contains(&id)
}

/// A registry with every recording subsystem armed, so the bench exercises
/// (and measures) the full observability overhead. The determinism digest
/// is included: its per-event fold is on the scheduler hot path, so a
/// digest-cost regression shows up as stage wall time under `bench-diff`.
fn bench_registry() -> Registry {
    let reg = Registry::enabled();
    reg.enable_tracing();
    reg.enable_series(cdnc_obs::DEFAULT_CADENCE_US);
    reg.enable_timeprof();
    reg.enable_digest(cdnc_obs::DigestConfig::default());
    reg
}

/// One stage's row: identity, wall time, and throughput denominators.
/// "Events" are the stage's real work units: scheduler events for
/// simulation figures, poll records for the crawl (which has no scheduler
/// — the old row reported 0 there). With the time profiler armed (always,
/// in [`bench_registry`]), the row also carries per-kind dispatch costs
/// (`handlers`: count and mean nanoseconds per label) and per-frame
/// self-times (`self_times`: seconds per span path), the tracked curves
/// the [`bench_diff`] handler/self-time gates compare.
fn stage_entry(id: &str, wall_s: f64, reg: &Registry) -> Json {
    let snap = reg.snapshot();
    let events = snap.counter("sched_events_processed")
        + snap.counter("crawl_server_polls")
        + snap.counter("crawl_provider_polls")
        + snap.counter("crawl_user_polls");
    let spans = reg.tracer().store().spans.len() as u64;
    let samples = reg.series_snapshot().total_points;
    let per_s = |n: u64| if wall_s > 0.0 { n as f64 / wall_s } else { 0.0 };
    let mut entry = Json::obj()
        .field("id", id)
        .field("wall_s", wall_s)
        .field("events", events)
        .field("events_per_s", per_s(events))
        .field("spans", spans)
        .field("spans_per_s", per_s(spans))
        .field("samples", samples)
        .field("samples_per_s", per_s(samples))
        .field("peak_rss_kb", perf::peak_rss_kb());
    if let Some(tp) = reg.timeprof_snapshot() {
        let mut handlers = Json::obj();
        for (label, h) in &tp.handlers {
            let mean_ns = if h.count > 0 { 1e9 * h.sum / h.count as f64 } else { 0.0 };
            handlers = handlers
                .field(label, Json::obj().field("count", h.count).field("mean_ns", mean_ns));
        }
        let mut self_times = Json::obj();
        for (path, t) in &tp.frames {
            self_times = self_times.field(path, t.self_secs());
        }
        entry = entry.field("handlers", handlers).field("self_times", self_times);
    }
    entry
}

/// Span-recording overhead at two working-set sizes: mean nanoseconds per
/// enter/exit cycle over a few distinct paths versus many. Interned O(1)
/// recording keeps the ratio near 1 regardless of how many distinct spans
/// a run has opened; a linear-scan regression shows up as a ratio near
/// the path-count quotient and trips [`MAX_SPAN_OVERHEAD_RATIO`] in
/// `bench-diff`.
pub fn span_overhead() -> Json {
    const SMALL: usize = 64;
    const LARGE: usize = 4096;
    const OPS: usize = 20_000;
    let point = |paths: usize| {
        let reg = Registry::enabled();
        let names: Vec<String> = (0..paths).map(|i| format!("span_{i}")).collect();
        for name in &names {
            let _warm = reg.span(name);
        }
        let started = std::time::Instant::now();
        for i in 0..OPS {
            let _g = reg.span(&names[i % paths]);
        }
        started.elapsed().as_nanos() as f64 / OPS as f64
    };
    let (small, large) = (point(SMALL), point(LARGE));
    Json::obj()
        .field("paths_small", SMALL as u64)
        .field("ns_per_op_small", small)
        .field("paths_large", LARGE as u64)
        .field("ns_per_op_large", large)
        .field("ratio", large / small.max(1e-9))
}

/// Network sizes for the scale sweep (≥ 4 points at every scale, so a
/// slope is always fittable).
fn sweep_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![20, 40, 60, 80],
        Scale::Default | Scale::Paper => vec![170, 340, 510, 680],
    }
}

/// Runs one representative simulation (§4 unicast push) at each sweep
/// size and returns the `"scale_curve"` array: per point, the node count
/// plus `rss_per_node` (bytes), `events_per_s`, and `allocs_per_event`.
///
/// Memory per point prefers the tagged allocator's window peak-live
/// (bracketed per point, so earlier points don't pollute later ones) and
/// falls back to process `VmHWM` when the counting allocator is not
/// installed. Allocation counts need the installed allocator too and
/// report 0 without it.
pub fn run_scale_sweep(ctx: RunCtx) -> Json {
    let was_enabled = cdnc_obs::profile::is_enabled();
    cdnc_obs::profile::set_enabled(true);
    let mut points = Vec::new();
    for nodes in sweep_sizes(ctx.scale) {
        let reg = bench_registry();
        let mut cfg =
            SimConfig::section4(Scheme::Unicast(MethodKind::Push), section4_updates_for(ctx));
        cfg.servers = nodes;
        cfg.seed = ctx.seed(cfg.seed);
        cdnc_obs::profile::reset_window_peaks();
        let base = cdnc_obs::profile::snapshot();
        let started = std::time::Instant::now();
        run_batch_on(vec![cfg], &reg, &ctx.pool);
        let wall_s = started.elapsed().as_secs_f64();
        let window = cdnc_obs::profile::snapshot().window_since(&base);
        let events = reg.snapshot().counter("sched_events_processed");
        let peak_live = window.peak_live_bytes.max(0) as u64;
        let mem_bytes = if cdnc_obs::profile::installed() && peak_live > 0 {
            peak_live
        } else {
            perf::peak_rss_kb().unwrap_or(0).saturating_mul(1024).max(1)
        };
        let allocs = if cdnc_obs::profile::installed() { window.total_allocs } else { 0 };
        points.push(
            Json::obj()
                .field("nodes", nodes as u64)
                .field("wall_s", wall_s)
                .field("events", events)
                .field("events_per_s", if wall_s > 0.0 { events as f64 / wall_s } else { 0.0 })
                .field("rss_per_node", mem_bytes as f64 / nodes as f64)
                .field(
                    "allocs_per_event",
                    if events > 0 { allocs as f64 / events as f64 } else { 0.0 },
                ),
        );
    }
    cdnc_obs::profile::set_enabled(was_enabled);
    Json::Arr(points)
}

/// Runs the default bench workload; see [`run_bench_with`].
pub fn run_bench(ctx: RunCtx, label: &str) -> Json {
    run_bench_with(ctx, label, &BenchOptions::default())
}

/// Runs the bench workload and returns the `BENCH_<label>.json` document.
/// Unknown ids in `opts.figs` panic — the CLI validates with
/// [`is_bench_stage`] first.
pub fn run_bench_with(ctx: RunCtx, label: &str, opts: &BenchOptions) -> Json {
    let started = std::time::Instant::now();
    let stage_ids: Vec<String> = match &opts.figs {
        Some(figs) => figs.clone(),
        None => std::iter::once("crawl".to_owned())
            .chain(BENCH_FIGURES.iter().map(|s| (*s).to_owned()))
            .collect(),
    };
    let mut stages = Vec::new();
    for id in &stage_ids {
        let reg = bench_registry();
        let stage_started = std::time::Instant::now();
        if id == "crawl" {
            let _trace = build_trace_ctx(ctx, &reg);
        } else {
            run_figure_ctx(id, ctx, None, &reg)
                .unwrap_or_else(|| panic!("unknown bench stage: {id}"));
        }
        stages.push(stage_entry(id, stage_started.elapsed().as_secs_f64(), &reg));
    }

    let mut doc = Json::obj()
        .field("label", label)
        .field("scale", format!("{:?}", ctx.scale))
        .field("jobs", ctx.pool.jobs() as u64)
        .field("figs", Json::Arr(stage_ids.iter().map(|s| Json::from(s.as_str())).collect()))
        .field("figures", Json::Arr(stages));
    if opts.scale_sweep {
        doc = doc.field("scale_curve", run_scale_sweep(ctx));
    }
    doc = doc.field("span_overhead", span_overhead());
    doc.field("total_wall_s", started.elapsed().as_secs_f64())
        .field("peak_rss_kb", perf::peak_rss_kb())
        .field("alloc_mb_estimate", perf::total_allocated_mb())
}

fn stage<'a>(doc: &'a Json, id: &str) -> Option<&'a Json> {
    let Some(Json::Arr(stages)) = doc.get("figures") else { return None };
    stages.iter().find(|s| s.get("id").and_then(Json::as_str) == Some(id))
}

fn stage_wall(doc: &Json, id: &str) -> Option<f64> {
    stage(doc, id).and_then(|s| s.get("wall_s")).and_then(Json::as_f64)
}

fn stage_ids(doc: &Json) -> Vec<String> {
    match doc.get("figures") {
        Some(Json::Arr(stages)) => stages
            .iter()
            .filter_map(|s| s.get("id").and_then(Json::as_str).map(str::to_owned))
            .collect(),
        _ => Vec::new(),
    }
}

/// One scale-curve point: `(nodes, rss_per_node, events_per_s)`.
fn curve_points(doc: &Json) -> Vec<(f64, f64, f64)> {
    let Some(Json::Arr(points)) = doc.get("scale_curve") else { return Vec::new() };
    points
        .iter()
        .filter_map(|p| {
            let f = |k: &str| p.get(k).and_then(Json::as_f64);
            Some((f("nodes")?, f("rss_per_node")?, f("events_per_s").unwrap_or(0.0)))
        })
        .collect()
}

/// Least-squares slope of `ln(y)` against `ln(x)` — the growth exponent
/// of `y ~ x^slope`. `None` with fewer than two positive points.
pub fn loglog_slope(points: &[(f64, f64)]) -> Option<f64> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let (sx, sy): (f64, f64) = logs.iter().fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
    let (mx, my) = (sx / n, sy / n);
    let sxx: f64 = logs.iter().map(|(x, _)| (x - mx) * (x - mx)).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
    (sxx > 0.0).then(|| sxy / sxx)
}

/// Curve-aware comparison: per-point `rss_per_node` / `events_per_s`
/// thresholds plus the slope check (a candidate whose per-node memory
/// grows like `nodes^s` with `s` beyond [`MAX_RSS_SLOPE`] and the
/// baseline's own slope + [`MAX_SLOPE_DELTA`] fails even when every
/// point is individually within threshold). Silent when the baseline has
/// no curve — old baselines still diff.
fn curve_diff(baseline: &Json, candidate: &Json, threshold: f64, out: &mut Vec<String>) {
    let base = curve_points(baseline);
    if base.is_empty() {
        return;
    }
    let cand = curve_points(candidate);
    if cand.is_empty() {
        out.push("scale_curve: missing from candidate".to_owned());
        return;
    }
    for &(nodes, base_rss, base_eps) in &base {
        let Some(&(_, cand_rss, cand_eps)) = cand.iter().find(|(n, _, _)| *n == nodes) else {
            out.push(format!("scale_curve@{nodes:.0}: missing from candidate"));
            continue;
        };
        if cand_rss > base_rss * (1.0 + threshold) {
            out.push(format!(
                "scale_curve@{nodes:.0} rss_per_node: {cand_rss:.0}B vs baseline {base_rss:.0}B \
                 (+{:.0}% > +{:.0}% allowed)",
                (cand_rss / base_rss - 1.0) * 100.0,
                threshold * 100.0
            ));
        }
        if base_eps > 0.0 && cand_eps > 0.0 && cand_eps < base_eps / (1.0 + threshold) {
            out.push(format!(
                "scale_curve@{nodes:.0} events_per_s: {cand_eps:.0} vs baseline {base_eps:.0} \
                 (-{:.0}% > -{:.0}% allowed)",
                (1.0 - cand_eps / base_eps) * 100.0,
                (1.0 - 1.0 / (1.0 + threshold)) * 100.0
            ));
        }
    }
    let rss = |c: &[(f64, f64, f64)]| c.iter().map(|&(n, r, _)| (n, r)).collect::<Vec<_>>();
    if let Some(cand_slope) = loglog_slope(&rss(&cand)) {
        let base_slope = loglog_slope(&rss(&base)).unwrap_or(0.0);
        if cand_slope > MAX_RSS_SLOPE.max(base_slope + MAX_SLOPE_DELTA) {
            out.push(format!(
                "scale_curve slope: rss_per_node grows like nodes^{cand_slope:.2} \
                 (baseline nodes^{base_slope:.2}) — super-linear memory growth"
            ));
        }
    }
}

/// Per-kind handler-cost and per-frame self-time comparison between two
/// stage rows. Handler means below [`MIN_HANDLER_MEAN_NS`] and self-times
/// below [`MIN_SELF_TIME_S`] in the baseline are noise floors and skipped;
/// labels/paths missing from the candidate are skipped too (wall-clock
/// sections are volatile, only shared curves compare). Silent when the
/// baseline row carries no time-profile sections — old baselines still
/// diff.
fn time_diff(id: &str, base: &Json, cand: &Json, threshold: f64, out: &mut Vec<String>) {
    if let Some(Json::Obj(handlers)) = base.get("handlers") {
        for (label, stats) in handlers {
            let base_mean = stats.get("mean_ns").and_then(Json::as_f64).unwrap_or(0.0);
            if base_mean < MIN_HANDLER_MEAN_NS {
                continue;
            }
            let cand_mean = cand
                .get("handlers")
                .and_then(|h| h.get(label))
                .and_then(|s| s.get("mean_ns"))
                .and_then(Json::as_f64);
            if let Some(cand_mean) = cand_mean {
                if cand_mean > base_mean * (1.0 + threshold) {
                    out.push(format!(
                        "{id} handler {label}: {cand_mean:.0}ns vs baseline {base_mean:.0}ns \
                         (+{:.0}% > +{:.0}% allowed)",
                        (cand_mean / base_mean - 1.0) * 100.0,
                        threshold * 100.0
                    ));
                }
            }
        }
    }
    if let Some(Json::Obj(self_times)) = base.get("self_times") {
        for (path, base_self) in self_times {
            let base_self = base_self.as_f64().unwrap_or(0.0);
            if base_self < MIN_SELF_TIME_S {
                continue;
            }
            let cand_self = cand.get("self_times").and_then(|s| s.get(path)).and_then(Json::as_f64);
            if let Some(cand_self) = cand_self {
                if cand_self > base_self * (1.0 + threshold) {
                    out.push(format!(
                        "{id} self-time {path}: {cand_self:.3}s vs baseline {base_self:.3}s \
                         (+{:.0}% > +{:.0}% allowed)",
                        (cand_self / base_self - 1.0) * 100.0,
                        threshold * 100.0
                    ));
                }
            }
        }
    }
}

/// Compares a candidate bench document against a baseline. Returns one
/// line per regression — a stage (or the total) whose wall time exceeds
/// the baseline's by more than `threshold` (a fraction: 0.3 = 30% slower
/// tolerated), one line per stage missing from the candidate, per-kind
/// handler costs and per-frame self-times past the same threshold (see
/// [`time_diff`]), a span-overhead ratio beyond
/// [`MAX_SPAN_OVERHEAD_RATIO`] (an absolute property of the candidate:
/// span recording must not scale with the number of distinct paths), plus
/// the scale-curve comparisons of [`curve_diff`] when the baseline
/// carries a curve. Empty means the candidate holds the baseline's
/// performance.
pub fn bench_diff(baseline: &Json, candidate: &Json, threshold: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    let flag = |name: &str, base: f64, cand: f64, out: &mut Vec<String>| {
        if cand > base * (1.0 + threshold) {
            out.push(format!(
                "{name}: {cand:.3}s vs baseline {base:.3}s (+{:.0}% > +{:.0}% allowed)",
                (cand / base - 1.0) * 100.0,
                threshold * 100.0
            ));
        }
    };
    for id in stage_ids(baseline) {
        match (stage_wall(baseline, &id), stage_wall(candidate, &id)) {
            (Some(base), Some(cand)) => flag(&id, base, cand, &mut regressions),
            (Some(_), None) => regressions.push(format!("{id}: missing from candidate")),
            _ => {}
        }
        if let (Some(base), Some(cand)) = (stage(baseline, &id), stage(candidate, &id)) {
            time_diff(&id, base, cand, threshold, &mut regressions);
        }
    }
    if let Some(ratio) =
        candidate.get("span_overhead").and_then(|s| s.get("ratio")).and_then(Json::as_f64)
    {
        if ratio > MAX_SPAN_OVERHEAD_RATIO {
            regressions.push(format!(
                "span_overhead: recording cost grows {ratio:.1}× from 64 to 4096 distinct \
                 paths (> {MAX_SPAN_OVERHEAD_RATIO:.0}× allowed) — span interning is no \
                 longer O(1)"
            ));
        }
    }
    if let (Some(base), Some(cand)) = (
        baseline.get("total_wall_s").and_then(Json::as_f64),
        candidate.get("total_wall_s").and_then(Json::as_f64),
    ) {
        flag("total", base, cand, &mut regressions);
    }
    curve_diff(baseline, candidate, threshold, &mut regressions);
    regressions
}

/// Human-readable table of a bench document's stages.
pub fn bench_table(doc: &Json) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<8} {:>8} {:>12} {:>12} {:>10} {:>10}\n",
        "stage", "wall_s", "events/s", "spans/s", "samples", "rss_kb"
    ));
    if let Some(Json::Arr(stages)) = doc.get("figures") {
        for s in stages {
            let f = |k: &str| s.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            let id = s.get("id").and_then(Json::as_str).unwrap_or("?");
            out.push_str(&format!(
                "  {:<8} {:>8.3} {:>12.0} {:>12.0} {:>10.0} {:>10.0}\n",
                id,
                f("wall_s"),
                f("events_per_s"),
                f("spans_per_s"),
                f("samples"),
                f("peak_rss_kb"),
            ));
        }
    }
    if let Some(Json::Arr(points)) = doc.get("scale_curve") {
        out.push_str(&format!(
            "  {:<8} {:>8} {:>12} {:>14} {:>16}\n",
            "nodes", "wall_s", "events/s", "rss/node (B)", "allocs/event"
        ));
        for p in points {
            let f = |k: &str| p.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            out.push_str(&format!(
                "  {:<8.0} {:>8.3} {:>12.0} {:>14.0} {:>16.2}\n",
                f("nodes"),
                f("wall_s"),
                f("events_per_s"),
                f("rss_per_node"),
                f("allocs_per_event"),
            ));
        }
        if let Some(slope) =
            loglog_slope(&curve_points(doc).iter().map(|&(n, r, _)| (n, r)).collect::<Vec<_>>())
        {
            out.push_str(&format!("  rss_per_node growth: nodes^{slope:.2}\n"));
        }
    }
    if let Some(so) = doc.get("span_overhead") {
        let f = |k: &str| so.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        out.push_str(&format!(
            "  span overhead: {:.0} ns/op @{:.0} paths, {:.0} ns/op @{:.0} paths \
             (ratio {:.2})\n",
            f("ns_per_op_small"),
            f("paths_small"),
            f("ns_per_op_large"),
            f("paths_large"),
            f("ratio"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use cdnc_par::Pool;

    fn doc(walls: &[(&str, f64)], total: f64) -> Json {
        let stages =
            walls.iter().map(|(id, w)| Json::obj().field("id", *id).field("wall_s", *w)).collect();
        Json::obj().field("figures", Json::Arr(stages)).field("total_wall_s", total)
    }

    #[test]
    fn diff_flags_only_regressions_beyond_threshold() {
        let base = doc(&[("fig17", 1.0), ("fig20", 2.0)], 3.0);
        let ok = doc(&[("fig17", 1.2), ("fig20", 2.1)], 3.3);
        assert!(bench_diff(&base, &ok, 0.3).is_empty());
        let slow = doc(&[("fig17", 1.5), ("fig20", 2.0)], 3.5);
        let regs = bench_diff(&base, &slow, 0.3);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].starts_with("fig17:"));
    }

    #[test]
    fn diff_flags_missing_stages_and_total() {
        let base = doc(&[("fig17", 1.0)], 1.0);
        let gone = doc(&[], 5.0);
        let regs = bench_diff(&base, &gone, 0.3);
        assert_eq!(regs.len(), 2, "{regs:?}");
        assert!(regs.iter().any(|r| r.contains("missing")));
        assert!(regs.iter().any(|r| r.starts_with("total:")));
    }

    #[test]
    fn bench_runs_the_smoke_workload() {
        let out = run_bench(RunCtx::with_pool(Scale::Smoke, Pool::new(1)), "unit");
        assert_eq!(out.get("label").and_then(Json::as_str), Some("unit"));
        let ids = stage_ids(&out);
        assert_eq!(ids[0], "crawl");
        for id in BENCH_FIGURES {
            assert!(ids.iter().any(|s| s == id), "{id} missing from bench output");
            assert!(stage_wall(&out, id).is_some_and(|w| w > 0.0));
        }
        // Every simulation stage produced spans and samples: the harness
        // measures the instrumented hot paths, not idle registries.
        let Some(Json::Arr(stages)) = out.get("figures") else { panic!("figures") };
        for s in stages.iter().filter(|s| s.get("id").and_then(Json::as_str) != Some("crawl")) {
            assert!(s.get("samples").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
        }
        // The crawl row reports its real work units (poll records), not 0.
        let crawl = stages.iter().find(|s| s.get("id").and_then(Json::as_str) == Some("crawl"));
        assert!(
            crawl.unwrap().get("events").and_then(Json::as_f64).unwrap_or(0.0) > 0.0,
            "crawl stage must report poll-record work units"
        );
        // The chosen stage set is surfaced in the artifact.
        let Some(Json::Arr(figs)) = out.get("figs") else { panic!("figs") };
        assert_eq!(figs.len(), 1 + BENCH_FIGURES.len());
        assert!(bench_diff(&out, &out, 0.0).is_empty(), "a doc never regresses against itself");
        assert!(bench_table(&out).contains("fig20"));
    }

    #[test]
    fn figs_selection_narrows_the_workload() {
        let opts = BenchOptions { figs: Some(vec!["fig17".to_owned()]), scale_sweep: false };
        let out = run_bench_with(RunCtx::with_pool(Scale::Smoke, Pool::new(1)), "sel", &opts);
        assert_eq!(stage_ids(&out), vec!["fig17"]);
        let Some(Json::Arr(figs)) = out.get("figs") else { panic!("figs") };
        assert_eq!(figs.len(), 1);
        assert_eq!(figs[0].as_str(), Some("fig17"));
        assert!(is_bench_stage("crawl") && is_bench_stage("fig24") && !is_bench_stage("fig99"));
    }

    #[test]
    fn scale_sweep_emits_a_curve() {
        let opts = BenchOptions { figs: Some(vec!["fig17".to_owned()]), scale_sweep: true };
        let out = run_bench_with(RunCtx::with_pool(Scale::Smoke, Pool::new(1)), "sweep", &opts);
        let Some(Json::Arr(points)) = out.get("scale_curve") else { panic!("scale_curve") };
        assert!(points.len() >= 4, "sweep needs at least 4 scale points");
        let mut last_nodes = 0.0;
        for p in points {
            let f = |k: &str| p.get(k).and_then(Json::as_f64).unwrap_or(-1.0);
            assert!(f("nodes") > last_nodes, "sizes strictly increase");
            last_nodes = f("nodes");
            assert!(f("events") > 0.0);
            assert!(f("events_per_s") > 0.0);
            assert!(f("rss_per_node") > 0.0);
            assert!(f("allocs_per_event") >= 0.0, "0 without the installed allocator");
        }
        assert!(bench_table(&out).contains("rss_per_node growth"));
        assert!(bench_diff(&out, &out, 0.0).is_empty(), "curve never regresses against itself");
    }

    fn curve_doc(points: &[(u64, f64)]) -> Json {
        let arr = points
            .iter()
            .map(|&(n, rss)| {
                Json::obj()
                    .field("nodes", n)
                    .field("rss_per_node", rss)
                    .field("events_per_s", 1000.0)
            })
            .collect();
        Json::obj().field("figures", Json::Arr(Vec::new())).field("scale_curve", Json::Arr(arr))
    }

    #[test]
    fn diff_fails_injected_super_linear_rss_curve() {
        // Flat per-node memory (healthy: total memory linear in nodes)…
        let base = curve_doc(&[(100, 1000.0), (200, 1000.0), (400, 1000.0), (800, 1000.0)]);
        // …versus per-node memory doubling with size (total ~ nodes²).
        let bad = curve_doc(&[(100, 1000.0), (200, 2000.0), (400, 4000.0), (800, 8000.0)]);
        let regs = bench_diff(&base, &bad, 10.0);
        // A huge per-point threshold lets every point through: only the
        // slope check can catch the super-linear shape.
        assert!(
            regs.iter().any(|r| r.contains("super-linear")),
            "slope check must flag nodes^1 rss_per_node growth: {regs:?}"
        );
        assert!(bench_diff(&base, &base, 0.0).is_empty());
    }

    #[test]
    fn diff_flags_per_point_curve_regressions() {
        let base = curve_doc(&[(100, 1000.0), (200, 1000.0), (400, 1000.0), (800, 1000.0)]);
        let mut worse = curve_doc(&[(100, 1000.0), (200, 1600.0), (400, 1000.0), (800, 1000.0)]);
        let regs = bench_diff(&base, &worse, 0.3);
        assert!(regs.iter().any(|r| r.contains("scale_curve@200 rss_per_node")), "{regs:?}");
        // A baseline with a curve demands one from the candidate.
        worse = Json::obj().field("figures", Json::Arr(Vec::new()));
        let regs = bench_diff(&base, &worse, 0.3);
        assert!(regs.iter().any(|r| r.contains("scale_curve: missing")), "{regs:?}");
    }

    fn timed_doc(handler_mean_ns: f64, self_s: f64, ratio: f64) -> Json {
        let stage = Json::obj()
            .field("id", "fig17")
            .field("wall_s", 1.0)
            .field(
                "handlers",
                Json::obj()
                    .field(
                        "ev_arrive",
                        Json::obj().field("count", 1000u64).field("mean_ns", handler_mean_ns),
                    )
                    .field("msg_ack", Json::obj().field("count", 10u64).field("mean_ns", 5.0)),
            )
            .field(
                "self_times",
                Json::obj().field("sim_events", self_s).field("sim_build", 0.0001),
            );
        Json::obj()
            .field("figures", Json::Arr(vec![stage]))
            .field("span_overhead", Json::obj().field("ratio", ratio))
            .field("total_wall_s", 1.0)
    }

    #[test]
    fn diff_fails_injected_handler_time_regression() {
        let base = timed_doc(400.0, 0.5, 1.0);
        assert!(bench_diff(&base, &base, 0.3).is_empty(), "a doc holds its own times");
        // Handler dispatch cost doubled: the per-kind gate fires.
        let slow_handler = timed_doc(800.0, 0.5, 1.0);
        let regs = bench_diff(&base, &slow_handler, 0.3);
        assert!(regs.iter().any(|r| r.contains("handler ev_arrive")), "{regs:?}");
        // Frame self-time doubled: the self-time gate fires.
        let slow_frame = timed_doc(400.0, 1.0, 1.0);
        let regs = bench_diff(&base, &slow_frame, 0.3);
        assert!(regs.iter().any(|r| r.contains("self-time sim_events")), "{regs:?}");
        // Sub-floor baselines never gate: a stage whose handler mean
        // (5 ns) and frame self-time (0.1 ms) sit below the noise floors
        // may drift arbitrarily without tripping anything.
        let floor_stage = |mean_ns: f64, self_s: f64| {
            Json::obj()
                .field("id", "figX")
                .field("wall_s", 1.0)
                .field(
                    "handlers",
                    Json::obj().field(
                        "msg_ack",
                        Json::obj().field("count", 10u64).field("mean_ns", mean_ns),
                    ),
                )
                .field("self_times", Json::obj().field("sim_build", self_s))
        };
        let wrap =
            |s: Json| Json::obj().field("figures", Json::Arr(vec![s])).field("total_wall_s", 1.0);
        let regs =
            bench_diff(&wrap(floor_stage(5.0, 0.0001)), &wrap(floor_stage(45.0, 0.004)), 0.0);
        assert!(regs.is_empty(), "noise-floor labels and frames are exempt: {regs:?}");
    }

    #[test]
    fn diff_fails_super_linear_span_overhead() {
        let base = timed_doc(400.0, 0.5, 1.0);
        let scan = timed_doc(400.0, 0.5, 60.0);
        let regs = bench_diff(&base, &scan, 0.3);
        assert!(regs.iter().any(|r| r.contains("span_overhead")), "{regs:?}");
        assert!(regs.iter().any(|r| r.contains("no longer O(1)")), "{regs:?}");
    }

    #[test]
    fn span_overhead_stays_flat_across_path_counts() {
        let so = span_overhead();
        let ratio = so.get("ratio").and_then(Json::as_f64).expect("ratio");
        assert!(ratio > 0.0);
        assert!(
            ratio <= MAX_SPAN_OVERHEAD_RATIO,
            "interned span recording must not scale with distinct-path count: ratio {ratio:.2}"
        );
    }

    #[test]
    fn loglog_slope_fits_known_exponents() {
        let flat: Vec<(f64, f64)> = vec![(100.0, 5.0), (200.0, 5.0), (400.0, 5.0)];
        assert!(loglog_slope(&flat).unwrap().abs() < 1e-9);
        let linear: Vec<(f64, f64)> = vec![(100.0, 100.0), (200.0, 200.0), (400.0, 400.0)];
        assert!((loglog_slope(&linear).unwrap() - 1.0).abs() < 1e-9);
        assert!(loglog_slope(&[(100.0, 5.0)]).is_none(), "one point has no slope");
    }
}
