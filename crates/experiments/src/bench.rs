//! Continuous performance-regression harness.
//!
//! `experiments bench` runs a fixed workload — the crawl plus a small set
//! of representative figures — with the full observability stack armed
//! (metrics, causal tracing, series sampling) and records per-stage wall
//! time, event/span/sample throughput, and memory footprint into a
//! `BENCH_<label>.json` document. `experiments bench-diff a b` compares
//! two such documents and exits non-zero when stage wall time regressed
//! beyond a configurable noise threshold, so CI can hold the line against
//! a committed `BENCH_baseline.json`.
//!
//! Wall time and memory are machine-dependent: a committed baseline only
//! gates CI with a generous threshold (the `ci.sh` run uses 4.0 — a 5×
//! slowdown — to catch pathological regressions, not scheduler noise).

use crate::perf;
use crate::{build_trace_ctx, run_figure_ctx, RunCtx};
use cdnc_obs::{Json, Registry};

/// Stages of the bench workload: the shared crawl, one cheap §4 figure,
/// the §4 figure with the largest simulation fan-out, and a §5 HAT
/// figure (tree topologies exercise different code paths).
pub const BENCH_FIGURES: [&str; 3] = ["fig17", "fig20", "fig24"];

/// Default `bench-diff` noise threshold: a stage regresses when its wall
/// time exceeds the baseline's by more than this fraction.
pub const DEFAULT_BENCH_THRESHOLD: f64 = 0.3;

/// A registry with every recording subsystem armed, so the bench exercises
/// (and measures) the full observability overhead.
fn bench_registry() -> Registry {
    let reg = Registry::enabled();
    reg.enable_tracing();
    reg.enable_series(cdnc_obs::DEFAULT_CADENCE_US);
    reg
}

/// One stage's row: identity, wall time, and throughput denominators.
fn stage_entry(id: &str, wall_s: f64, reg: &Registry) -> Json {
    let events = reg.snapshot().counter("sched_events_processed");
    let spans = reg.tracer().store().spans.len() as u64;
    let samples = reg.series_snapshot().total_points;
    let per_s = |n: u64| if wall_s > 0.0 { n as f64 / wall_s } else { 0.0 };
    Json::obj()
        .field("id", id)
        .field("wall_s", wall_s)
        .field("events", events)
        .field("events_per_s", per_s(events))
        .field("spans", spans)
        .field("spans_per_s", per_s(spans))
        .field("samples", samples)
        .field("samples_per_s", per_s(samples))
        .field("peak_rss_kb", perf::peak_rss_kb())
}

/// Runs the bench workload and returns the `BENCH_<label>.json` document.
pub fn run_bench(ctx: RunCtx, label: &str) -> Json {
    let started = std::time::Instant::now();
    let mut stages = Vec::new();

    let reg = bench_registry();
    let stage_started = std::time::Instant::now();
    let _trace = build_trace_ctx(ctx, &reg);
    stages.push(stage_entry("crawl", stage_started.elapsed().as_secs_f64(), &reg));

    for id in BENCH_FIGURES {
        let reg = bench_registry();
        let stage_started = std::time::Instant::now();
        run_figure_ctx(id, ctx, None, &reg).expect("bench figure ids are known");
        stages.push(stage_entry(id, stage_started.elapsed().as_secs_f64(), &reg));
    }

    Json::obj()
        .field("label", label)
        .field("scale", format!("{:?}", ctx.scale))
        .field("jobs", ctx.pool.jobs() as u64)
        .field("figures", Json::Arr(stages))
        .field("total_wall_s", started.elapsed().as_secs_f64())
        .field("peak_rss_kb", perf::peak_rss_kb())
        .field("alloc_mb_estimate", perf::total_allocated_mb())
}

fn stage_wall(doc: &Json, id: &str) -> Option<f64> {
    let Some(Json::Arr(stages)) = doc.get("figures") else { return None };
    stages
        .iter()
        .find(|s| s.get("id").and_then(Json::as_str) == Some(id))
        .and_then(|s| s.get("wall_s"))
        .and_then(Json::as_f64)
}

fn stage_ids(doc: &Json) -> Vec<String> {
    match doc.get("figures") {
        Some(Json::Arr(stages)) => stages
            .iter()
            .filter_map(|s| s.get("id").and_then(Json::as_str).map(str::to_owned))
            .collect(),
        _ => Vec::new(),
    }
}

/// Compares a candidate bench document against a baseline. Returns one
/// line per regression — a stage (or the total) whose wall time exceeds
/// the baseline's by more than `threshold` (a fraction: 0.3 = 30% slower
/// tolerated) — plus one line per stage missing from the candidate.
/// Empty means the candidate holds the baseline's performance.
pub fn bench_diff(baseline: &Json, candidate: &Json, threshold: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    let flag = |name: &str, base: f64, cand: f64, out: &mut Vec<String>| {
        if cand > base * (1.0 + threshold) {
            out.push(format!(
                "{name}: {cand:.3}s vs baseline {base:.3}s (+{:.0}% > +{:.0}% allowed)",
                (cand / base - 1.0) * 100.0,
                threshold * 100.0
            ));
        }
    };
    for id in stage_ids(baseline) {
        match (stage_wall(baseline, &id), stage_wall(candidate, &id)) {
            (Some(base), Some(cand)) => flag(&id, base, cand, &mut regressions),
            (Some(_), None) => regressions.push(format!("{id}: missing from candidate")),
            _ => {}
        }
    }
    if let (Some(base), Some(cand)) = (
        baseline.get("total_wall_s").and_then(Json::as_f64),
        candidate.get("total_wall_s").and_then(Json::as_f64),
    ) {
        flag("total", base, cand, &mut regressions);
    }
    regressions
}

/// Human-readable table of a bench document's stages.
pub fn bench_table(doc: &Json) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<8} {:>8} {:>12} {:>12} {:>10} {:>10}\n",
        "stage", "wall_s", "events/s", "spans/s", "samples", "rss_kb"
    ));
    if let Some(Json::Arr(stages)) = doc.get("figures") {
        for s in stages {
            let f = |k: &str| s.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            let id = s.get("id").and_then(Json::as_str).unwrap_or("?");
            out.push_str(&format!(
                "  {:<8} {:>8.3} {:>12.0} {:>12.0} {:>10.0} {:>10.0}\n",
                id,
                f("wall_s"),
                f("events_per_s"),
                f("spans_per_s"),
                f("samples"),
                f("peak_rss_kb"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use cdnc_par::Pool;

    fn doc(walls: &[(&str, f64)], total: f64) -> Json {
        let stages =
            walls.iter().map(|(id, w)| Json::obj().field("id", *id).field("wall_s", *w)).collect();
        Json::obj().field("figures", Json::Arr(stages)).field("total_wall_s", total)
    }

    #[test]
    fn diff_flags_only_regressions_beyond_threshold() {
        let base = doc(&[("fig17", 1.0), ("fig20", 2.0)], 3.0);
        let ok = doc(&[("fig17", 1.2), ("fig20", 2.1)], 3.3);
        assert!(bench_diff(&base, &ok, 0.3).is_empty());
        let slow = doc(&[("fig17", 1.5), ("fig20", 2.0)], 3.5);
        let regs = bench_diff(&base, &slow, 0.3);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].starts_with("fig17:"));
    }

    #[test]
    fn diff_flags_missing_stages_and_total() {
        let base = doc(&[("fig17", 1.0)], 1.0);
        let gone = doc(&[], 5.0);
        let regs = bench_diff(&base, &gone, 0.3);
        assert_eq!(regs.len(), 2, "{regs:?}");
        assert!(regs.iter().any(|r| r.contains("missing")));
        assert!(regs.iter().any(|r| r.starts_with("total:")));
    }

    #[test]
    fn bench_runs_the_smoke_workload() {
        let out = run_bench(RunCtx::with_pool(Scale::Smoke, Pool::new(1)), "unit");
        assert_eq!(out.get("label").and_then(Json::as_str), Some("unit"));
        let ids = stage_ids(&out);
        assert_eq!(ids[0], "crawl");
        for id in BENCH_FIGURES {
            assert!(ids.iter().any(|s| s == id), "{id} missing from bench output");
            assert!(stage_wall(&out, id).is_some_and(|w| w > 0.0));
        }
        // Every simulation stage produced spans and samples: the harness
        // measures the instrumented hot paths, not idle registries.
        let Some(Json::Arr(stages)) = out.get("figures") else { panic!("figures") };
        for s in stages.iter().filter(|s| s.get("id").and_then(Json::as_str) != Some("crawl")) {
            assert!(s.get("samples").and_then(Json::as_f64).unwrap_or(0.0) > 0.0);
        }
        assert!(bench_diff(&out, &out, 0.0).is_empty(), "a doc never regresses against itself");
        assert!(bench_table(&out).contains("fig20"));
    }
}
