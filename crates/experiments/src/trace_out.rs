//! Trace artifacts for the experiments binary: Chrome/Perfetto trace JSON
//! per figure, flight-recorder dumps for anomalous updates, and the text
//! renderings behind the `trace` subcommand (`summary`, `critical-path`,
//! `inspect <update-id>`).

use crate::obs_out::ObsSettings;
use cdnc_obs::{
    parse_chrome, to_chrome, FlightRecorder, PropagationTree, SpanId, SpanKind, SpanStore,
};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Subdirectory of the trace dir holding flight-recorder dumps.
pub const FLIGHTREC_SUBDIR: &str = "flightrec";

/// Writes `<trace-dir>/<id>.trace.json` (Chrome trace-event format, loads
/// in ui.perfetto.dev) plus one flight-recorder dump per anomalous update
/// under `<trace-dir>/flightrec/`. Returns the trace path and the number of
/// dumps, or `None` when the store recorded nothing (figure without a
/// simulation, or tracing off).
pub fn write_figure_trace(
    settings: &ObsSettings,
    id: &str,
    store: &SpanStore,
) -> io::Result<Option<(PathBuf, usize)>> {
    if store.spans.is_empty() {
        return Ok(None);
    }
    let dir = settings.trace_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{id}.trace.json"));
    // Compact: traces carry one event per hop/adoption/user view, so even a
    // smoke-scale figure produces hundreds of thousands of events.
    std::fs::write(&path, to_chrome(store).to_compact())?;
    let reports = FlightRecorder::new(settings.trace_threshold_s).scan(store);
    if !reports.is_empty() {
        let flight_dir = dir.join(FLIGHTREC_SUBDIR);
        std::fs::create_dir_all(&flight_dir)?;
        for report in &reports {
            let dump = flight_dir.join(format!("{id}_{}.json", report.file_stem()));
            std::fs::write(dump, report.to_json().to_pretty())?;
        }
    }
    Ok(Some((path, reports.len())))
}

/// Loads a span store back from a trace JSON file written by
/// [`write_figure_trace`].
pub fn load_store(path: &Path) -> Result<SpanStore, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_chrome(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// The `trace summary` rendering: store-wide span statistics.
pub fn summary_text(store: &SpanStore) -> String {
    let s = store.summary();
    let mut out = String::new();
    let _ = writeln!(out, "traces (updates published): {}", s.traces);
    let _ = writeln!(out, "spans recorded:             {}", s.spans);
    let _ = writeln!(out, "horizon:                    {:.3} s", store.horizon_us as f64 / 1e6);
    for (kind, count) in &s.by_kind {
        if *count > 0 {
            let _ = writeln!(out, "  {kind:<14} {count}");
        }
    }
    let _ = writeln!(out, "adoptions:                  {}", s.adoptions);
    let _ = writeln!(out, "lost deliveries:            {}", s.lost);
    let _ = writeln!(out, "orphaned hops:              {}", s.orphan_hops);
    if s.adoptions > 0 {
        let _ = writeln!(out, "mean adopt lag:             {:.3} s", s.mean_adopt_lag_s);
        let _ = writeln!(out, "max adopt lag:              {:.3} s", s.max_adopt_lag_s);
    }
    out
}

/// The `trace critical-path` rendering: per update method (trace scope),
/// the mean and worst end-to-end critical path over that method's updates.
/// `None` when the store holds no traces.
pub fn critical_path_table(store: &SpanStore) -> Option<String> {
    if store.traces.is_empty() {
        return None;
    }
    let scopes = store.scopes();
    let width = scopes.iter().map(|s| s.len()).max().unwrap_or(6).max(6);
    // One pass over the store; per-trace critical_path() calls would
    // re-scan every span per trace.
    let forest = store.forest();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:<width$}  {:>7}  {:>10}  {:>10}  {:>9}",
        "method", "updates", "mean path", "max path", "max hops"
    );
    for scope in scopes {
        let paths: Vec<_> = store
            .traces
            .iter()
            .zip(&forest)
            .filter(|(m, _)| m.scope == scope)
            .filter_map(|(m, tree)| tree.as_ref().and_then(|t| t.critical_path(m)))
            .collect();
        if paths.is_empty() {
            continue;
        }
        let mean_s =
            paths.iter().map(|p| p.total_us as f64 / 1e6).sum::<f64>() / paths.len() as f64;
        let max_s = paths.iter().map(|p| p.total_us).max().unwrap_or(0) as f64 / 1e6;
        let max_hops = paths
            .iter()
            .map(|p| p.steps.iter().filter(|s| s.kind == SpanKind::Hop).count())
            .max()
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "  {:<width$}  {:>7}  {:>9.3}s  {:>9.3}s  {:>9}",
            scope,
            paths.len(),
            mean_s,
            max_s,
            max_hops
        );
    }
    Some(out)
}

fn walk(tree: &PropagationTree, span: SpanId, depth: usize, published_us: u64, out: &mut String) {
    if let Some(s) = tree.span(span) {
        let at_s = s.end_us.saturating_sub(published_us) as f64 / 1e6;
        let src = s.src.map(|v| format!(" from {v}")).unwrap_or_default();
        let _ = writeln!(
            out,
            "{:indent$}+{at_s:.3}s  {} [{}] node {}{}",
            "",
            s.kind.as_str(),
            s.label,
            s.node,
            src,
            indent = depth * 2
        );
    }
    for &child in tree.children(span) {
        walk(tree, child, depth + 1, published_us, out);
    }
}

/// The `trace inspect <update-id>` rendering: the full propagation tree of
/// every trace carrying that update number (one per scope when several
/// sims share a store). `None` when no trace matches.
pub fn inspect_text(store: &SpanStore, update: u32) -> Option<String> {
    let mut out = String::new();
    for meta in store.traces.iter().filter(|m| m.update == update) {
        let Some(tree) = store.tree(meta.id) else { continue };
        let _ = writeln!(
            out,
            "update {} · {} · published at {:.3} s",
            meta.update,
            meta.scope,
            meta.published_us as f64 / 1e6
        );
        walk(&tree, tree.root, 1, meta.published_us, &mut out);
        let orphans = tree.orphan_hops();
        if !orphans.is_empty() {
            let _ = writeln!(out, "  !! {} orphaned hop(s)", orphans.len());
        }
    }
    (!out.is_empty()).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_core::{run_with_obs, MethodKind, Scheme, SimConfig};
    use cdnc_obs::Registry;
    use cdnc_simcore::{SimDuration, SimTime};
    use cdnc_trace::UpdateSequence;

    fn traced_store() -> SpanStore {
        let updates = UpdateSequence::periodic(SimDuration::from_secs(60), SimTime::from_secs(300));
        let mut cfg = SimConfig::section4(Scheme::Unicast(MethodKind::Push), updates);
        cfg.servers = 8;
        cfg.users_per_server = 1;
        let reg = Registry::enabled();
        reg.enable_tracing();
        let _ = run_with_obs(&cfg, &reg);
        reg.tracer().store()
    }

    #[test]
    fn renderings_cover_a_real_run() {
        let store = traced_store();
        let summary = summary_text(&store);
        assert!(summary.contains("traces (updates published): 5"), "summary:\n{summary}");
        let table = critical_path_table(&store).expect("traces present");
        assert!(table.contains("Push"), "table:\n{table}");
        let inspect = inspect_text(&store, 1).expect("update 1 traced");
        assert!(inspect.contains("publish"), "inspect:\n{inspect}");
        assert!(inspect.contains("adopt"), "inspect:\n{inspect}");
        assert!(inspect_text(&store, 999).is_none());
    }

    #[test]
    fn artifacts_round_trip_through_disk() {
        let store = traced_store();
        let tmp = std::env::temp_dir().join("cdnc_trace_out_test");
        let _ = std::fs::remove_dir_all(&tmp);
        let settings =
            ObsSettings { trace: true, trace_dir: Some(tmp.clone()), ..ObsSettings::off() };
        let (path, dumps) =
            write_figure_trace(&settings, "figtest", &store).expect("write").expect("non-empty");
        assert_eq!(dumps, 0, "a healthy smoke run must not trip the flight recorder");
        let back = load_store(&path).expect("reload");
        assert_eq!(back, store, "disk round-trip must be lossless");
        // An empty store writes nothing.
        assert!(write_figure_trace(&settings, "empty", &SpanStore::default())
            .expect("io ok")
            .is_none());
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
