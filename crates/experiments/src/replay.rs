//! Checkpoint/replay plumbing for the `experiments checkpoint` and
//! `experiments replay` subcommands.
//!
//! A replay artifact is one plain-text file: a small experiments-level
//! header naming the `ext_churn` sweep cell it reproduces (scheme, churn
//! intensity, flash incident, scale, checkpoint time) followed by the core
//! simulator artifact from [`cdnc_core::checkpoint`]. The header is enough
//! to rebuild the exact [`SimConfig`](cdnc_core::SimConfig), so a replay
//! needs nothing but the file — no flags have to match the original run.
//!
//! `replay` is self-verifying: it restores the artifact, runs it forward,
//! runs the same configuration uninterrupted from scratch, and compares
//! both the determinism-digest chains and the end states. The CLI prints
//! the verdict as stable `key=value` lines (`replay_chain_match=true`)
//! that CI greps.

use crate::ext_figs::{churn_config, churn_scheme, CHURN_SCHEME_KEYS};
use crate::{RunCtx, Scale};
use cdnc_core::SimConfig;
use cdnc_obs::{DigestConfig, Registry};
use cdnc_simcore::ckpt::{CkptError, CkptReader, CkptWriter};
use cdnc_simcore::SimTime;

/// Artifact kind tag of the experiments-level header.
pub const REPLAY_KIND: &str = "cdn-replay";

/// Lines the header occupies (version + kind + the [`ReplaySpec`] fields);
/// everything after is the embedded core artifact.
const HEADER_LINES: usize = 7;

/// Which `ext_churn` cell a replay artifact reproduces, and when the
/// checkpoint was taken.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySpec {
    /// Scheme key, one of [`CHURN_SCHEME_KEYS`].
    pub scheme_key: String,
    /// Stochastic churn intensity in `[0, 1]`.
    pub intensity: f64,
    /// Whether the scheduled supernode-kill + flash-restart incident is
    /// armed.
    pub flash: bool,
    /// Experiment scale the cell ran at.
    pub scale: Scale,
    /// Simulation time the checkpoint was taken.
    pub at: SimTime,
}

impl ReplaySpec {
    /// Rebuilds the exact simulation configuration of this cell
    /// (canonical replicate, serial pool — a replay is one run).
    pub fn config(&self) -> Option<SimConfig> {
        let scheme = churn_scheme(&self.scheme_key)?;
        Some(churn_config(RunCtx::new(self.scale), scheme, self.intensity, self.flash))
    }
}

/// The self-verification result of one replay.
#[derive(Debug, Clone)]
pub struct ReplayVerdict {
    /// The cell that was replayed.
    pub spec: ReplaySpec,
    /// Digest chain of the restored-then-continued run.
    pub replay_chain: u64,
    /// Digest chain of the uninterrupted from-scratch run.
    pub straight_chain: u64,
    /// Events folded into each chain (replay, straight).
    pub replay_events: u64,
    /// Events folded into the straight chain.
    pub straight_events: u64,
    /// Chains and fold counts agree — every scheduled event after the
    /// restore point was bit-identical.
    pub chain_match: bool,
    /// End states agree: the final [`SimReport`](cdnc_core::SimReport)s
    /// are equal (full replay), or the re-serialized checkpoint artifacts
    /// are byte-identical (`--until` replay).
    pub report_match: bool,
}

/// Runs the cell until `spec.at` and serializes it into one replay
/// artifact (header + core checkpoint).
///
/// The checkpointing run always carries an armed determinism digest — the
/// artifact must embed the chain state up to `spec.at`, or a later replay
/// could not verify chain continuity against a from-scratch run. The
/// digest is armed on `obs` itself when it is enabled (so `--obs` metrics
/// still record), or on a private registry otherwise.
pub fn take_checkpoint(spec: &ReplaySpec, obs: &Registry) -> String {
    let cfg = spec.config().expect("scheme key validated by the caller");
    obs.enable_digest(DigestConfig::default());
    let private;
    let reg = if obs.digest_snapshot().is_some() {
        obs
    } else {
        private = digest_registry();
        &private
    };
    let core = cdnc_core::checkpoint_with_obs(&cfg, reg, spec.at);
    let mut w = CkptWriter::new(REPLAY_KIND);
    w.str("scheme", &spec.scheme_key);
    w.f64("intensity", spec.intensity);
    w.bool("flash", spec.flash);
    w.str("scale", spec.scale.arg_name());
    w.time("at", spec.at);
    let mut text = w.finish();
    text.push_str(&core);
    text
}

/// Splits a replay artifact into its parsed header and the embedded core
/// artifact text.
pub fn read_artifact(text: &str) -> Result<(ReplaySpec, &str), CkptError> {
    let (header, core) = split_after_line(text, HEADER_LINES)
        .ok_or_else(|| CkptError("artifact shorter than the replay header".to_owned()))?;
    let mut r = CkptReader::new(header, REPLAY_KIND)?;
    let scheme_key = r.str("scheme")?.to_owned();
    let intensity = r.f64("intensity")?;
    let flash = r.bool("flash")?;
    let scale_name = r.str("scale")?;
    let scale = Scale::parse(scale_name)
        .ok_or_else(|| CkptError(format!("unknown scale {scale_name:?} in replay header")))?;
    let at = r.time("at")?;
    r.done()?;
    if churn_scheme(&scheme_key).is_none() {
        return Err(CkptError(format!(
            "unknown scheme {scheme_key:?} in replay header (one of: {})",
            CHURN_SCHEME_KEYS.join(", ")
        )));
    }
    Ok((ReplaySpec { scheme_key, intensity, flash, scale, at }, core))
}

/// Restores a replay artifact, runs it forward — to the horizon, or only
/// `until` when given — and self-verifies against an uninterrupted run of
/// the same configuration.
///
/// Both runs carry an armed determinism digest; the verdict compares the
/// chains plus the end states. Bit-identical replay means both `*_match`
/// fields are `true`.
pub fn replay(text: &str, until: Option<SimTime>) -> Result<ReplayVerdict, CkptError> {
    let (spec, core) = read_artifact(text)?;
    let cfg = spec.config().expect("read_artifact validated the scheme key");
    let replay_reg = digest_registry();
    let straight_reg = digest_registry();
    let report_match = match until {
        None => {
            let replayed = cdnc_core::resume_with_obs(&cfg, &replay_reg, core)?;
            let straight = cdnc_core::run_with_obs(&cfg, &straight_reg);
            replayed == straight
        }
        Some(t) => {
            if t < spec.at {
                return Err(CkptError(format!(
                    "--until {:.3}s is before the checkpoint time {:.3}s",
                    t.as_secs_f64(),
                    spec.at.as_secs_f64()
                )));
            }
            let replayed = cdnc_core::resume_until_with_obs(&cfg, &replay_reg, core, t)?;
            let straight = cdnc_core::checkpoint_with_obs(&cfg, &straight_reg, t);
            replayed == straight
        }
    };
    let rd = replay_reg.digest_snapshot().expect("digest armed above");
    let sd = straight_reg.digest_snapshot().expect("digest armed above");
    Ok(ReplayVerdict {
        spec,
        replay_chain: rd.chain,
        straight_chain: sd.chain,
        replay_events: rd.events,
        straight_events: sd.events,
        chain_match: rd.chain == sd.chain && rd.events == sd.events,
        report_match,
    })
}

/// A fresh registry with only the determinism digest armed.
fn digest_registry() -> Registry {
    let reg = Registry::enabled();
    reg.enable_digest(DigestConfig::default());
    reg
}

/// Splits `text` just after its `n`-th newline.
fn split_after_line(text: &str, n: usize) -> Option<(&str, &str)> {
    let mut seen = 0;
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            seen += 1;
            if seen == n {
                return Some(text.split_at(i + 1));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_spec() -> ReplaySpec {
        ReplaySpec {
            scheme_key: "hat".to_owned(),
            intensity: 0.8,
            flash: true,
            scale: Scale::Smoke,
            at: SimTime::from_secs(240),
        }
    }

    #[test]
    fn artifact_round_trips_the_spec() {
        let spec = smoke_spec();
        let text = take_checkpoint(&spec, &Registry::disabled());
        let (read, core) = read_artifact(&text).unwrap();
        assert_eq!(read, spec);
        assert!(core.starts_with("ckpt_version="), "core artifact follows the header");
    }

    #[test]
    fn full_replay_is_bit_identical() {
        let text = take_checkpoint(&smoke_spec(), &Registry::disabled());
        let v = replay(&text, None).unwrap();
        assert!(v.chain_match, "chains {:#x} vs {:#x}", v.replay_chain, v.straight_chain);
        assert!(v.report_match);
        assert_eq!(v.replay_events, v.straight_events);
    }

    #[test]
    fn windowed_replay_matches_a_straight_checkpoint() {
        let text = take_checkpoint(&smoke_spec(), &Registry::disabled());
        let v = replay(&text, Some(SimTime::from_secs(420))).unwrap();
        assert!(v.chain_match && v.report_match, "anomaly window replay diverged");
    }

    #[test]
    fn windowed_replay_rejects_a_window_before_the_checkpoint() {
        let text = take_checkpoint(&smoke_spec(), &Registry::disabled());
        let err = replay(&text, Some(SimTime::from_secs(60))).unwrap_err();
        assert!(err.0.contains("before the checkpoint"), "{err}");
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        assert!(read_artifact("ckpt_version=1\n").is_err(), "truncated header");
        let text = take_checkpoint(&smoke_spec(), &Registry::disabled());
        let bad = text.replace("scheme=hat", "scheme=carrier-pigeon");
        assert!(read_artifact(&bad).is_err(), "unknown scheme");
        let bad = text.replace("scale=smoke", "scale=galactic");
        assert!(read_artifact(&bad).is_err(), "unknown scale");
    }
}
