//! Experiment scales: how big to run each reproduction.
//!
//! The paper's full measurement is 3000 servers × 15 days; its §5
//! evaluation is 850 servers × 4250 observers. Those run fine in release
//! mode but are unnecessary for checking result *shapes*, so three scales
//! are provided. `Paper` uses the paper's exact counts wherever stated.

use cdnc_trace::CrawlConfig;

/// How big to run the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Minutes-long CI-friendly runs preserving all shapes.
    #[default]
    Default,
    /// Seconds-long runs for integration tests.
    Smoke,
    /// The paper's stated sizes (3000-server crawl, 850-server §5 runs).
    Paper,
}

impl Scale {
    /// Parses a `--scale` argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "default" => Some(Scale::Default),
            "smoke" => Some(Scale::Smoke),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The `--scale` argument spelling of this scale (inverse of
    /// [`Scale::parse`]) — the form artifacts record so commands like
    /// `divergence` can re-run a recorded scenario.
    pub fn arg_name(self) -> &'static str {
        match self {
            Scale::Default => "default",
            Scale::Smoke => "smoke",
            Scale::Paper => "paper",
        }
    }

    /// The crawl configuration for the §3 measurement reproduction.
    pub fn crawl_config(self) -> CrawlConfig {
        match self {
            Scale::Smoke => {
                CrawlConfig { servers: 60, users: 30, days: 3, seed: 7, ..CrawlConfig::tiny() }
            }
            Scale::Default => {
                CrawlConfig { servers: 250, users: 120, days: 6, seed: 7, ..CrawlConfig::default() }
            }
            Scale::Paper => CrawlConfig {
                servers: 3_000,
                users: 200,
                days: 15,
                seed: 7,
                ..CrawlConfig::default()
            },
        }
    }

    /// Content-server count for §4 evaluation runs (paper: 170).
    pub fn section4_servers(self) -> usize {
        match self {
            Scale::Smoke => 40,
            Scale::Default | Scale::Paper => 170,
        }
    }

    /// Content-server count for §5 runs (paper: 850 = 170 sites × 5).
    pub fn section5_servers(self) -> usize {
        match self {
            Scale::Smoke => 60,
            Scale::Default => 340,
            Scale::Paper => 850,
        }
    }

    /// Network sizes swept in Fig. 20 (paper: 170–850).
    pub fn fig20_sizes(self) -> Vec<usize> {
        match self {
            Scale::Smoke => vec![40, 80],
            Scale::Default | Scale::Paper => vec![170, 340, 510, 680, 850],
        }
    }

    /// Packet sizes (KB) swept in Fig. 19 (paper: 1, 100, 500).
    pub fn fig19_sizes_kb(self) -> Vec<f64> {
        vec![1.0, 100.0, 500.0]
    }

    /// End-user TTLs (s) swept in Figs. 18, 22(a), 24 (paper: 10–120 / 10–60).
    pub fn user_ttl_sweep_s(self) -> Vec<u64> {
        match self {
            Scale::Smoke => vec![10, 30, 60],
            Scale::Default | Scale::Paper => vec![10, 20, 30, 40, 50, 60],
        }
    }

    /// Server TTLs (s) swept in Figs. 17, 22(b) (paper: 10–60).
    pub fn server_ttl_sweep_s(self) -> Vec<u64> {
        match self {
            Scale::Smoke => vec![10, 60],
            Scale::Default | Scale::Paper => vec![10, 20, 30, 40, 50, 60],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_scales() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn paper_scale_matches_paper_counts() {
        let cfg = Scale::Paper.crawl_config();
        assert_eq!(cfg.servers, 3_000);
        assert_eq!(cfg.users, 200);
        assert_eq!(cfg.days, 15);
        assert_eq!(Scale::Paper.section4_servers(), 170);
        assert_eq!(Scale::Paper.section5_servers(), 850);
        assert_eq!(Scale::Paper.fig20_sizes(), vec![170, 340, 510, 680, 850]);
    }

    #[test]
    fn smoke_is_smaller_than_default() {
        assert!(Scale::Smoke.crawl_config().servers < Scale::Default.crawl_config().servers);
        assert!(Scale::Smoke.section5_servers() < Scale::Default.section5_servers());
    }
}
