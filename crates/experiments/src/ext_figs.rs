//! Extension experiments beyond the paper's figures.
//!
//! * [`ext_failures`] — the §1 motivation made quantitative: how each
//!   infrastructure degrades under server failures, and what tree repair
//!   costs in structure-maintenance messages.
//! * [`ext_adaptive`] — the §5.1 argument made quantitative: the
//!   related-work adaptive-TTL baseline vs the paper's self-adaptive method
//!   on regular and bursty content.
//! * [`ext_policy`] — the §6 future work: the policy advisor's
//!   recommendations validated against fixed baselines by simulation.
//! * [`ext_chaos`] — the robustness extension: every method × infrastructure
//!   under the deterministic fault plane (loss, duplication, reordering,
//!   latency spikes, a scheduled ISP partition, a provider brownout), with
//!   the reliable-delivery protocol and HAT graceful degradation active.
//! * [`ext_workload`] — the request-plane extension: every method ×
//!   infrastructure serving a Zipf-popularity catalog through per-edge LRU
//!   caches with delayed-hit coalescing, swept over catalog size and Zipf
//!   skew; reports cache hit rates, user-perceived latency, and
//!   staleness-served, with full latency/staleness CDF curves.

use crate::ctx::RunCtx;
use crate::eval_figs::{run_batch_on, section4_updates_for};
use crate::report::FigureReport;
use cdnc_core::{
    recommend, ChurnKind, ChurnPlan, ChurnTarget, FailureConfig, FaultPlan, MethodKind,
    Requirement, ScheduledChurn, Scheme, SimConfig, WorkloadPlan, WorkloadProfile,
};
use cdnc_geo::IspId;
use cdnc_net::{Brownout, IspPartition, NodeId, PacketKind};
use cdnc_obs::Registry;
use cdnc_simcore::stats::Cdf;
use cdnc_simcore::{SimDuration, SimTime};
use cdnc_trace::UpdateSequence;

/// Failure resilience per scheme: inconsistency, repair traffic and
/// undelivered updates as the failure rate grows.
pub fn ext_failures(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new(
        "ext_failures",
        "EXT: inconsistency and repair cost under server failures",
    );
    let schemes = [
        Scheme::Unicast(MethodKind::Push),
        Scheme::Multicast { method: MethodKind::Push, arity: 2 },
        Scheme::Multicast { method: MethodKind::Ttl, arity: 2 },
        Scheme::hat(),
    ];
    // Mean gap between one server's failures, seconds; smaller = harsher.
    let regimes: [(&str, Option<f64>); 3] =
        [("none", None), ("light", Some(2_000.0)), ("heavy", Some(400.0))];
    let mut configs = Vec::new();
    for &(_, gap) in &regimes {
        for scheme in schemes {
            let mut cfg = SimConfig::section4(scheme, section4_updates_for(ctx));
            cfg.servers = ctx.scale.section4_servers().min(120);
            cfg.seed = ctx.seed(cfg.seed);
            cfg.failures = gap.map(FailureConfig::with_mean_gap_s);
            configs.push(cfg);
        }
    }
    let reports = run_batch_on(configs, obs, &ctx.pool);
    for (chunk, &(regime, _)) in reports.chunks(schemes.len()).zip(&regimes) {
        for r in chunk {
            report.row(format!(
                "  [{regime:>5}] {:<22} lag={:>7.3}s maintenance={:>5} unresolved={:>3}",
                r.scheme_label,
                r.mean_server_lag_s(),
                r.traffic.count_of(PacketKind::TreeMaintenance),
                r.unresolved_lags
            ));
            report.keyval(format!("{}_{regime}_lag_s", r.scheme_label), r.mean_server_lag_s());
            report.keyval(
                format!("{}_{regime}_maintenance", r.scheme_label),
                r.traffic.count_of(PacketKind::TreeMaintenance) as f64,
            );
            report.keyval(
                format!("{}_{regime}_unresolved", r.scheme_label),
                r.unresolved_lags as f64,
            );
            report.keyval(
                format!("{}_{regime}_lost_to_failed", r.scheme_label),
                r.msgs_lost_to_failed as f64,
            );
        }
    }
    report
}

/// Chaos sweep: each method over unicast and tree infrastructures, plus
/// HAT, against the fault plane at rising intensity. Non-zero intensities
/// also schedule a 5-minute ISP↔ISP partition and a provider uplink
/// brownout on top of the probabilistic noise. Reports consistency plus
/// the reliable-delivery protocol's work: retransmissions, abandoned
/// deliveries, failovers, and the convergence-invariant verdict.
pub fn ext_chaos(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new(
        "ext_chaos",
        "EXT: consistency and protocol cost under deterministic fault injection",
    );
    let schemes = [
        Scheme::Unicast(MethodKind::Push),
        Scheme::Unicast(MethodKind::Invalidation),
        Scheme::Unicast(MethodKind::Ttl),
        Scheme::Multicast { method: MethodKind::Push, arity: 2 },
        Scheme::Multicast { method: MethodKind::Invalidation, arity: 2 },
        Scheme::Multicast { method: MethodKind::Ttl, arity: 2 },
        Scheme::hat(),
    ];
    let intensities: [(&str, f64); 3] = [("calm", 0.0), ("rough", 0.3), ("storm", 0.7)];
    let mut configs = Vec::new();
    for &(_, intensity) in &intensities {
        for scheme in schemes {
            let mut cfg = SimConfig::section4(scheme, section4_updates_for(ctx));
            cfg.servers = ctx.scale.section4_servers().min(120);
            cfg.seed = ctx.seed(cfg.seed);
            let mut plan = FaultPlan::at_intensity(intensity);
            if intensity > 0.0 {
                // Two scheduled incidents on top of the probabilistic noise:
                // a peering dispute between two US ISPs mid-game, and a
                // provider uplink brownout shortly after. Both sit well
                // before the settle fence, so convergence must still hold.
                plan.faults.isp_partitions.push(IspPartition {
                    a: IspId(0),
                    b: IspId(5),
                    from: SimTime::from_secs(300),
                    until: SimTime::from_secs(600),
                });
                plan.faults.brownouts.push(Brownout {
                    node: NodeId(0),
                    from: SimTime::from_secs(700),
                    until: SimTime::from_secs(1_000),
                    extra_s_per_kb: 0.5 * intensity,
                });
            }
            cfg.faults = Some(plan);
            configs.push(cfg);
        }
    }
    let reports = run_batch_on(configs, obs, &ctx.pool);
    for (chunk, &(regime, _)) in reports.chunks(schemes.len()).zip(&intensities) {
        for r in chunk {
            report.row(format!(
                "  [{regime:>5}] {:<22} lag={:>7.3}s rtx={:>5} abandoned={:>3} failovers={:>2} violations={:>2}",
                r.scheme_label,
                r.mean_server_lag_s(),
                r.retransmits,
                r.abandoned_deliveries,
                r.failovers,
                r.convergence_violations
            ));
            report.keyval(format!("{}_{regime}_lag_s", r.scheme_label), r.mean_server_lag_s());
            report.keyval(format!("{}_{regime}_retransmits", r.scheme_label), r.retransmits as f64);
            report.keyval(
                format!("{}_{regime}_abandoned", r.scheme_label),
                r.abandoned_deliveries as f64,
            );
            report.keyval(format!("{}_{regime}_failovers", r.scheme_label), r.failovers as f64);
            report.keyval(
                format!("{}_{regime}_violations", r.scheme_label),
                r.convergence_violations as f64,
            );
        }
    }
    report
}

/// The schemes swept by [`ext_churn`].
fn churn_schemes() -> [Scheme; 7] {
    [
        Scheme::Unicast(MethodKind::Push),
        Scheme::Unicast(MethodKind::Invalidation),
        Scheme::Unicast(MethodKind::Ttl),
        Scheme::Multicast { method: MethodKind::Push, arity: 2 },
        Scheme::Multicast { method: MethodKind::Invalidation, arity: 2 },
        Scheme::Multicast { method: MethodKind::Ttl, arity: 2 },
        Scheme::hat(),
    ]
}

/// CLI keys for [`churn_schemes`], in the same order. These are the values
/// `experiments checkpoint --scheme <key>` accepts and the spelling a
/// replay artifact records.
pub const CHURN_SCHEME_KEYS: [&str; 7] =
    ["push", "invalidation", "ttl", "push-mcast", "invalidation-mcast", "ttl-mcast", "hat"];

/// Resolves a [`CHURN_SCHEME_KEYS`] entry back to its scheme.
pub fn churn_scheme(key: &str) -> Option<Scheme> {
    let idx = CHURN_SCHEME_KEYS.iter().position(|k| *k == key)?;
    Some(churn_schemes()[idx])
}

/// The configuration of one [`ext_churn`] cell. Shared with the
/// `experiments checkpoint` / `replay` commands, so a replay artifact
/// reproduces a sweep cell exactly.
///
/// Churn rides on the fault plane's survival protocol (acks, probes, the
/// convergence check); the plane itself stays calm so the sweep isolates
/// lifecycle effects. `flash` adds the supernode-kill + flash-restart
/// incident: the leader of cluster 0 crashes cold mid-game and is back
/// 45 s later, so the probe detector, failover, and the restarted node's
/// cold resync all fire in one cell.
pub fn churn_config(ctx: RunCtx, scheme: Scheme, intensity: f64, flash: bool) -> SimConfig {
    let mut cfg = SimConfig::section4(scheme, section4_updates_for(ctx));
    cfg.servers = ctx.scale.section4_servers().min(120);
    cfg.seed = ctx.seed(cfg.seed);
    cfg.faults = Some(FaultPlan::at_intensity(0.0));
    let mut plan = ChurnPlan::at_intensity(intensity);
    if flash {
        plan.scheduled.push(ScheduledChurn {
            at: SimDuration::from_secs(300),
            target: ChurnTarget::Supernode(0),
            kind: ChurnKind::Crash,
            downtime: SimDuration::from_secs(45),
        });
    }
    cfg.churn = Some(plan);
    cfg
}

/// Node-lifecycle sweep: every method over unicast and tree
/// infrastructures, plus HAT, under rising churn — servers leave
/// gracefully (handing off their waiters) or crash (losing cache and
/// consistency state) and rejoin cold, reconverging through the survival
/// protocol. The storm regime adds the scheduled supernode-kill +
/// flash-restart incident. Reports consistency, the lifecycle volume, the
/// fast-abandon count, failovers, and the convergence-invariant verdict —
/// which must be zero in every cell.
pub fn ext_churn(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new(
        "ext_churn",
        "EXT: consistency and recovery cost under node lifecycle churn",
    );
    // (regime, stochastic churn intensity, scheduled flash incident).
    let regimes: [(&str, f64, bool); 3] =
        [("calm", 0.0, false), ("mild", 0.3, false), ("storm", 0.8, true)];
    let schemes = churn_schemes();
    let mut configs = Vec::new();
    for &(_, intensity, flash) in &regimes {
        for scheme in schemes {
            configs.push(churn_config(ctx, scheme, intensity, flash));
        }
    }
    let reports = run_batch_on(configs, obs, &ctx.pool);
    for (chunk, &(regime, _, _)) in reports.chunks(schemes.len()).zip(&regimes) {
        for r in chunk {
            let departures = r.node_leaves + r.crash_restarts;
            report.row(format!(
                "  [{regime:>5}] {:<22} lag={:>7.3}s leaves={:>3} crashes={:>3} joins={:>3} \
                 abandoned_dep={:>3} failovers={:>2} violations={:>2}",
                r.scheme_label,
                r.mean_server_lag_s(),
                r.node_leaves,
                r.crash_restarts,
                r.node_joins,
                r.abandoned_to_departed,
                r.failovers,
                r.convergence_violations
            ));
            report.keyval(format!("{}_{regime}_lag_s", r.scheme_label), r.mean_server_lag_s());
            report.keyval(format!("{}_{regime}_departures", r.scheme_label), departures as f64);
            report.keyval(format!("{}_{regime}_joins", r.scheme_label), r.node_joins as f64);
            report.keyval(
                format!("{}_{regime}_abandoned_dep", r.scheme_label),
                r.abandoned_to_departed as f64,
            );
            report.keyval(format!("{}_{regime}_failovers", r.scheme_label), r.failovers as f64);
            report.keyval(
                format!("{}_{regime}_violations", r.scheme_label),
                r.convergence_violations as f64,
            );
        }
    }
    report
}

/// Number of `(x, cdf)` points recorded per [`ext_workload`] curve.
const WORKLOAD_CDF_POINTS: usize = 33;

/// Request-plane sweep: every method over unicast and tree
/// infrastructures, plus HAT, serving user requests against a Zipf
/// catalog through per-edge LRU caches with delayed-hit coalescing. The
/// regimes sweep the catalog axes — a baseline catalog, a wide catalog at
/// low skew (cache-hostile), and the same wide catalog at high skew
/// (cache-friendly) — holding cache capacity fixed. Each cell reports the
/// cache hit rate, delayed-hit count, user-perceived latency p99, and
/// staleness-served (how far behind the provider head live content was
/// served), plus full latency/staleness CDF curves for the artifact and
/// the HTML report.
pub fn ext_workload(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new(
        "ext_workload",
        "EXT: request-plane latency and staleness-served per method × infrastructure",
    );
    let schemes = [
        Scheme::Unicast(MethodKind::Push),
        Scheme::Unicast(MethodKind::Invalidation),
        Scheme::Unicast(MethodKind::Ttl),
        Scheme::Multicast { method: MethodKind::Push, arity: 2 },
        Scheme::Multicast { method: MethodKind::Invalidation, arity: 2 },
        Scheme::Multicast { method: MethodKind::Ttl, arity: 2 },
        Scheme::hat(),
    ];
    // (regime, catalog size, Zipf exponent): the sweep axes of the issue.
    let regimes: [(&str, usize, f64); 3] =
        [("base", 512, 0.9), ("wide", 2_048, 0.6), ("hot", 2_048, 1.2)];
    let mut configs = Vec::new();
    for &(_, catalog, zipf_s) in &regimes {
        for scheme in schemes {
            let mut cfg = SimConfig::section4(scheme, section4_updates_for(ctx));
            cfg.servers = ctx.scale.section4_servers().min(120);
            cfg.seed = ctx.seed(cfg.seed);
            cfg.workload = Some(WorkloadPlan::with_catalog(catalog, zipf_s));
            configs.push(cfg);
        }
    }
    let reports = run_batch_on(configs, obs, &ctx.pool);
    for (chunk, &(regime, _, _)) in reports.chunks(schemes.len()).zip(&regimes) {
        for r in chunk {
            let w = &r.workload;
            let lat_p99 = w.latency_percentile(99.0).unwrap_or(0.0);
            let stale_mean = w.mean_staleness_served_s();
            report.row(format!(
                "  [{regime:>4}] {:<22} hit={:>5.3} delayed={:>5} p99_lat={:>6.3}s stale_mean={:>7.3}s stale_p99={:>7.3}s",
                r.scheme_label,
                w.hit_rate(),
                w.delayed_hits,
                lat_p99,
                stale_mean,
                w.staleness_percentile(99.0).unwrap_or(0.0),
            ));
            report.keyval(format!("{}_{regime}_hit_rate", r.scheme_label), w.hit_rate());
            report.keyval(format!("{}_{regime}_requests", r.scheme_label), w.requests as f64);
            report
                .keyval(format!("{}_{regime}_delayed_hits", r.scheme_label), w.delayed_hits as f64);
            report.keyval(format!("{}_{regime}_lat_p99_s", r.scheme_label), lat_p99);
            report.keyval(format!("{}_{regime}_stale_mean_s", r.scheme_label), stale_mean);
            report.keyval(
                format!("{}_{regime}_stale_p99_s", r.scheme_label),
                w.staleness_percentile(99.0).unwrap_or(0.0),
            );
            report.keyval(format!("{}_{regime}_origin_kb", r.scheme_label), w.origin_kb);
            for (metric, samples) in
                [("latency", &w.latency_s), ("staleness", &w.staleness_served_s)]
            {
                if samples.is_empty() {
                    continue;
                }
                let cdf = Cdf::from_samples(samples.iter().copied());
                let hi = cdf.percentile(100.0).unwrap_or(0.0).max(1e-6);
                report.curve(
                    format!("{}_{regime}_{metric}_cdf", r.scheme_label),
                    cdf.series(0.0, hi, WORKLOAD_CDF_POINTS),
                );
            }
        }
    }
    report
}

/// The adaptive-TTL baseline vs fixed TTL vs the paper's self-adaptive
/// method, on regular and on bursty (live-game) content.
pub fn ext_adaptive(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new(
        "ext_adaptive",
        "EXT: adaptive-TTL baseline vs fixed TTL vs self-adaptive (Algorithm 1)",
    );
    let methods = [MethodKind::Ttl, MethodKind::AdaptiveTtl, MethodKind::SelfAdaptive];
    let workloads: [(&str, UpdateSequence); 2] = [
        ("steady", UpdateSequence::periodic(SimDuration::from_secs(30), SimTime::from_secs(5_000))),
        ("bursty", section4_updates_for(ctx)),
    ];
    for (name, updates) in workloads {
        let mut configs = Vec::new();
        for m in methods {
            let mut cfg = SimConfig::section5(Scheme::Unicast(m), updates.clone());
            cfg.servers = ctx.scale.section4_servers().min(120);
            cfg.seed = ctx.seed(cfg.seed);
            configs.push(cfg);
        }
        let reports = run_batch_on(configs, obs, &ctx.pool);
        for r in &reports {
            report.row(format!(
                "  [{name:>6}] {:<13} lag={:>7.3}s polls={:>6} updates={:>6}",
                r.scheme_label,
                r.mean_server_lag_s(),
                r.traffic.count_of(PacketKind::Poll),
                r.server_update_messages
            ));
            report.keyval(format!("{}_{name}_lag_s", r.scheme_label), r.mean_server_lag_s());
            report.keyval(
                format!("{}_{name}_polls", r.scheme_label),
                r.traffic.count_of(PacketKind::Poll) as f64,
            );
        }
    }
    report
}

/// Validates the §6 policy advisor: for each workload × requirement cell,
/// run the recommended scheme against the plain-TTL and Push baselines and
/// check the recommendation meets its bound at a competitive cost.
pub fn ext_policy(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new(
        "ext_policy",
        "EXT: §6 policy advisor — recommendations validated by simulation",
    );
    let servers = ctx.scale.section4_servers().min(100);
    let updates = section4_updates_for(ctx);
    let cases: [(&str, Requirement); 3] = [
        ("strict_2s", Requirement::strong(2.0)),
        ("bounded_60s", Requirement::strong(60.0)),
        ("best_effort", Requirement::best_effort()),
    ];
    // Visit rate: 5 users per server polling every 10 s = 0.5 visits/s.
    let profile = WorkloadProfile::from_updates(&updates, 0.5, servers, 1.0);
    for (name, req) in cases {
        let rec = recommend(&profile, &req);
        report.row(format!("  [{name}] advisor says: {rec}"));
        // Run the pick and the two fixed baselines.
        let make = |scheme: Scheme| {
            let mut cfg = SimConfig::section4(scheme, updates.clone());
            cfg.servers = servers;
            cfg.seed = ctx.seed(cfg.seed);
            if let Some(ttl) = rec.server_ttl {
                cfg.server_ttl = ttl;
                cfg.drain = ttl * 5 + SimDuration::from_secs(120);
            }
            cfg
        };
        let reports = run_batch_on(
            vec![
                make(rec.scheme),
                make(Scheme::Unicast(MethodKind::Ttl)),
                make(Scheme::Unicast(MethodKind::Push)),
            ],
            obs,
            &ctx.pool,
        );
        let (pick, ttl_base, push_base) = (&reports[0], &reports[1], &reports[2]);
        report.row(format!(
            "    pick {:<13} lag={:>7.3}s traffic={:.3e} | TTL lag={:>7.3}s traffic={:.3e} | Push lag={:>7.3}s traffic={:.3e}",
            pick.scheme_label,
            pick.mean_server_lag_s(),
            pick.traffic.km_kb(),
            ttl_base.mean_server_lag_s(),
            ttl_base.traffic.km_kb(),
            push_base.mean_server_lag_s(),
            push_base.traffic.km_kb()
        ));
        report.keyval(format!("{name}_pick_lag_s"), pick.mean_server_lag_s());
        report.keyval(format!("{name}_pick_traffic_kmkb"), pick.traffic.km_kb());
        if let Some(bound) = req.max_staleness_s {
            report.keyval(format!("{name}_bound_s"), bound);
        }
        report.keyval(format!("{name}_ttl_traffic_kmkb"), ttl_base.traffic.km_kb());
        report.keyval(format!("{name}_push_lag_s"), push_base.mean_server_lag_s());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn failures_extension_shapes() {
        let r = ext_failures(RunCtx::new(Scale::Smoke), &Registry::disabled());
        // No failures → no maintenance anywhere.
        assert_eq!(r.value("Push/Multicast_none_maintenance"), Some(0.0));
        // Heavy failures → repair traffic on trees.
        assert!(r.value("Push/Multicast_heavy_maintenance").unwrap() > 0.0);
        // Unicast push needs no structure maintenance ever.
        assert_eq!(r.value("Push_heavy_maintenance"), Some(0.0));
        // Failures hurt multicast push consistency.
        assert!(
            r.value("Push/Multicast_heavy_lag_s").unwrap()
                > r.value("Push/Multicast_none_lag_s").unwrap()
        );
    }

    #[test]
    fn chaos_extension_shapes() {
        let r = ext_chaos(RunCtx::new(Scale::Smoke), &Registry::disabled());
        for scheme in
            ["Push", "Invalidation", "TTL", "Push/Multicast", "Invalidation/Multicast", "HAT"]
        {
            // Intensity 0 runs the full protocol over a clean network: no
            // retransmissions, and the convergence invariant holds.
            assert_eq!(r.value(&format!("{scheme}_calm_retransmits")), Some(0.0), "{scheme}");
            assert_eq!(r.value(&format!("{scheme}_calm_violations")), Some(0.0), "{scheme}");
            // Convergence must also survive the storm: the settle fence
            // plus probe-driven resync guarantee it.
            assert_eq!(r.value(&format!("{scheme}_storm_violations")), Some(0.0), "{scheme}");
        }
        // Heavy loss makes the reliable-delivery protocol work for a
        // provider-driven method.
        assert!(r.value("Push_storm_retransmits").unwrap() > 0.0);
        assert!(
            r.value("Push_storm_retransmits").unwrap() > r.value("Push_rough_retransmits").unwrap()
        );
        // Polling methods need no retransmissions — lost polls self-heal.
        assert_eq!(r.value("TTL_storm_retransmits"), Some(0.0));
    }

    #[test]
    fn churn_extension_shapes() {
        let r = ext_churn(RunCtx::new(Scale::Smoke), &Registry::disabled());
        for scheme in
            ["Push", "Invalidation", "TTL", "Push/Multicast", "Invalidation/Multicast", "HAT"]
        {
            // The hard acceptance bar: zero convergence violations in every
            // cell — every departed server reconverges before the horizon.
            for regime in ["calm", "mild", "storm"] {
                assert_eq!(
                    r.value(&format!("{scheme}_{regime}_violations")),
                    Some(0.0),
                    "{scheme} {regime}"
                );
            }
            // Calm arms the lifecycle machinery at zero volume.
            assert_eq!(r.value(&format!("{scheme}_calm_departures")), Some(0.0), "{scheme}");
            // The storm churns, and every departure is matched by a rejoin.
            let departures = r.value(&format!("{scheme}_storm_departures")).unwrap();
            assert!(departures > 0.0, "{scheme} never churned in the storm");
            assert_eq!(
                r.value(&format!("{scheme}_storm_joins")),
                Some(departures),
                "{scheme} lost a rejoin"
            );
        }
        // The flash incident kills HAT's cluster-0 leader: the probe
        // detector must notice and promote a member.
        assert!(r.value("HAT_storm_failovers").unwrap() > 0.0, "flash-restart must fail over");
    }

    #[test]
    fn workload_extension_shapes() {
        let r = ext_workload(RunCtx::new(Scale::Smoke), &Registry::disabled());
        for scheme in
            ["Push", "Invalidation", "TTL", "Push/Multicast", "Invalidation/Multicast", "HAT"]
        {
            for regime in ["base", "wide", "hot"] {
                let hit = r.value(&format!("{scheme}_{regime}_hit_rate")).unwrap();
                assert!((0.0..=1.0).contains(&hit), "{scheme} {regime} hit rate {hit}");
                assert!(
                    r.value(&format!("{scheme}_{regime}_requests")).unwrap() > 0.0,
                    "{scheme} {regime} served no requests"
                );
            }
            // Skew concentrates demand on the hot ranks: with the catalog
            // held fixed, a steeper Zipf exponent must raise the hit rate.
            assert!(
                r.value(&format!("{scheme}_hot_hit_rate")).unwrap()
                    > r.value(&format!("{scheme}_wide_hit_rate")).unwrap(),
                "{scheme}: skew must raise the hit rate"
            );
        }
        // TTL serves from possibly-expired copies between polls; Push keeps
        // replicas at the head. Staleness-served must see the difference.
        assert!(
            r.value("TTL_base_stale_mean_s").unwrap() > r.value("Push_base_stale_mean_s").unwrap(),
            "TTL must serve staler content than Push"
        );
        // Every cell left its latency distribution as a curve ending at 1.
        let curve = r.curve_points("Push_base_latency_cdf").expect("latency curve recorded");
        assert_eq!(curve.len(), WORKLOAD_CDF_POINTS);
        assert_eq!(curve.last().unwrap().1, 1.0);
        assert!(r.curve_points("TTL_base_staleness_cdf").is_some());
    }

    #[test]
    fn failures_extension_counts_silent_loss() {
        let r = ext_failures(RunCtx::new(Scale::Smoke), &Registry::disabled());
        // No failures → nothing is lost to failed nodes.
        assert_eq!(r.value("Push_none_lost_to_failed"), Some(0.0));
        // Heavy failures with unicast push → the provider keeps pushing
        // into failed servers; the loss is counted, not silent.
        assert!(r.value("Push_heavy_lost_to_failed").unwrap() > 0.0);
    }

    #[test]
    fn policy_extension_validates_recommendations() {
        let r = ext_policy(RunCtx::new(Scale::Smoke), &Registry::disabled());
        // The strict pick actually meets its bound.
        let lag = r.value("strict_2s_pick_lag_s").unwrap();
        let bound = r.value("strict_2s_bound_s").unwrap();
        assert!(lag < bound, "strict pick lag {lag} must meet bound {bound}");
        // The bounded pick meets its bound and undercuts plain TTL traffic.
        let lag60 = r.value("bounded_60s_pick_lag_s").unwrap();
        assert!(lag60 < 60.0, "bounded pick lag {lag60}");
        let pick_traffic = r.value("bounded_60s_pick_traffic_kmkb").unwrap();
        let ttl_traffic = r.value("bounded_60s_ttl_traffic_kmkb").unwrap();
        assert!(
            pick_traffic <= ttl_traffic * 1.1,
            "pick traffic {pick_traffic} should not exceed plain TTL {ttl_traffic}"
        );
    }

    #[test]
    fn adaptive_extension_shapes() {
        let r = ext_adaptive(RunCtx::new(Scale::Smoke), &Registry::disabled());
        // On steady content the prediction pays off.
        assert!(
            r.value("AdaptiveTTL_steady_lag_s").unwrap() < r.value("TTL_steady_lag_s").unwrap()
        );
        // On bursty content it burns polls relative to Algorithm 1.
        assert!(
            r.value("AdaptiveTTL_bursty_polls").unwrap()
                > r.value("Self_bursty_polls").unwrap() * 2.0
        );
    }
}
