//! Extension experiments beyond the paper's figures.
//!
//! * [`ext_failures`] — the §1 motivation made quantitative: how each
//!   infrastructure degrades under server failures, and what tree repair
//!   costs in structure-maintenance messages.
//! * [`ext_adaptive`] — the §5.1 argument made quantitative: the
//!   related-work adaptive-TTL baseline vs the paper's self-adaptive method
//!   on regular and bursty content.
//! * [`ext_policy`] — the §6 future work: the policy advisor's
//!   recommendations validated against fixed baselines by simulation.

use crate::ctx::RunCtx;
use crate::eval_figs::{run_batch_on, section4_updates_for};
use crate::report::FigureReport;
use cdnc_core::{
    recommend, FailureConfig, MethodKind, Requirement, Scheme, SimConfig, WorkloadProfile,
};
use cdnc_net::PacketKind;
use cdnc_obs::Registry;
use cdnc_simcore::{SimDuration, SimTime};
use cdnc_trace::UpdateSequence;

/// Failure resilience per scheme: inconsistency, repair traffic and
/// undelivered updates as the failure rate grows.
pub fn ext_failures(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new(
        "ext_failures",
        "EXT: inconsistency and repair cost under server failures",
    );
    let schemes = [
        Scheme::Unicast(MethodKind::Push),
        Scheme::Multicast { method: MethodKind::Push, arity: 2 },
        Scheme::Multicast { method: MethodKind::Ttl, arity: 2 },
        Scheme::hat(),
    ];
    // Mean gap between one server's failures, seconds; smaller = harsher.
    let regimes: [(&str, Option<f64>); 3] =
        [("none", None), ("light", Some(2_000.0)), ("heavy", Some(400.0))];
    let mut configs = Vec::new();
    for &(_, gap) in &regimes {
        for scheme in schemes {
            let mut cfg = SimConfig::section4(scheme, section4_updates_for(ctx));
            cfg.servers = ctx.scale.section4_servers().min(120);
            cfg.seed = ctx.seed(cfg.seed);
            cfg.failures = gap.map(FailureConfig::with_mean_gap_s);
            configs.push(cfg);
        }
    }
    let reports = run_batch_on(configs, obs, &ctx.pool);
    for (chunk, &(regime, _)) in reports.chunks(schemes.len()).zip(&regimes) {
        for r in chunk {
            report.row(format!(
                "  [{regime:>5}] {:<22} lag={:>7.3}s maintenance={:>5} unresolved={:>3}",
                r.scheme_label,
                r.mean_server_lag_s(),
                r.traffic.count_of(PacketKind::TreeMaintenance),
                r.unresolved_lags
            ));
            report.keyval(format!("{}_{regime}_lag_s", r.scheme_label), r.mean_server_lag_s());
            report.keyval(
                format!("{}_{regime}_maintenance", r.scheme_label),
                r.traffic.count_of(PacketKind::TreeMaintenance) as f64,
            );
            report.keyval(
                format!("{}_{regime}_unresolved", r.scheme_label),
                r.unresolved_lags as f64,
            );
        }
    }
    report
}

/// The adaptive-TTL baseline vs fixed TTL vs the paper's self-adaptive
/// method, on regular and on bursty (live-game) content.
pub fn ext_adaptive(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new(
        "ext_adaptive",
        "EXT: adaptive-TTL baseline vs fixed TTL vs self-adaptive (Algorithm 1)",
    );
    let methods = [MethodKind::Ttl, MethodKind::AdaptiveTtl, MethodKind::SelfAdaptive];
    let workloads: [(&str, UpdateSequence); 2] = [
        ("steady", UpdateSequence::periodic(SimDuration::from_secs(30), SimTime::from_secs(5_000))),
        ("bursty", section4_updates_for(ctx)),
    ];
    for (name, updates) in workloads {
        let mut configs = Vec::new();
        for m in methods {
            let mut cfg = SimConfig::section5(Scheme::Unicast(m), updates.clone());
            cfg.servers = ctx.scale.section4_servers().min(120);
            cfg.seed = ctx.seed(cfg.seed);
            configs.push(cfg);
        }
        let reports = run_batch_on(configs, obs, &ctx.pool);
        for r in &reports {
            report.row(format!(
                "  [{name:>6}] {:<13} lag={:>7.3}s polls={:>6} updates={:>6}",
                r.scheme_label,
                r.mean_server_lag_s(),
                r.traffic.count_of(PacketKind::Poll),
                r.server_update_messages
            ));
            report.keyval(format!("{}_{name}_lag_s", r.scheme_label), r.mean_server_lag_s());
            report.keyval(
                format!("{}_{name}_polls", r.scheme_label),
                r.traffic.count_of(PacketKind::Poll) as f64,
            );
        }
    }
    report
}

/// Validates the §6 policy advisor: for each workload × requirement cell,
/// run the recommended scheme against the plain-TTL and Push baselines and
/// check the recommendation meets its bound at a competitive cost.
pub fn ext_policy(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new(
        "ext_policy",
        "EXT: §6 policy advisor — recommendations validated by simulation",
    );
    let servers = ctx.scale.section4_servers().min(100);
    let updates = section4_updates_for(ctx);
    let cases: [(&str, Requirement); 3] = [
        ("strict_2s", Requirement::strong(2.0)),
        ("bounded_60s", Requirement::strong(60.0)),
        ("best_effort", Requirement::best_effort()),
    ];
    // Visit rate: 5 users per server polling every 10 s = 0.5 visits/s.
    let profile = WorkloadProfile::from_updates(&updates, 0.5, servers, 1.0);
    for (name, req) in cases {
        let rec = recommend(&profile, &req);
        report.row(format!("  [{name}] advisor says: {rec}"));
        // Run the pick and the two fixed baselines.
        let make = |scheme: Scheme| {
            let mut cfg = SimConfig::section4(scheme, updates.clone());
            cfg.servers = servers;
            cfg.seed = ctx.seed(cfg.seed);
            if let Some(ttl) = rec.server_ttl {
                cfg.server_ttl = ttl;
                cfg.drain = ttl * 5 + SimDuration::from_secs(120);
            }
            cfg
        };
        let reports = run_batch_on(
            vec![
                make(rec.scheme),
                make(Scheme::Unicast(MethodKind::Ttl)),
                make(Scheme::Unicast(MethodKind::Push)),
            ],
            obs,
            &ctx.pool,
        );
        let (pick, ttl_base, push_base) = (&reports[0], &reports[1], &reports[2]);
        report.row(format!(
            "    pick {:<13} lag={:>7.3}s traffic={:.3e} | TTL lag={:>7.3}s traffic={:.3e} | Push lag={:>7.3}s traffic={:.3e}",
            pick.scheme_label,
            pick.mean_server_lag_s(),
            pick.traffic.km_kb(),
            ttl_base.mean_server_lag_s(),
            ttl_base.traffic.km_kb(),
            push_base.mean_server_lag_s(),
            push_base.traffic.km_kb()
        ));
        report.keyval(format!("{name}_pick_lag_s"), pick.mean_server_lag_s());
        report.keyval(format!("{name}_pick_traffic_kmkb"), pick.traffic.km_kb());
        if let Some(bound) = req.max_staleness_s {
            report.keyval(format!("{name}_bound_s"), bound);
        }
        report.keyval(format!("{name}_ttl_traffic_kmkb"), ttl_base.traffic.km_kb());
        report.keyval(format!("{name}_push_lag_s"), push_base.mean_server_lag_s());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn failures_extension_shapes() {
        let r = ext_failures(RunCtx::new(Scale::Smoke), &Registry::disabled());
        // No failures → no maintenance anywhere.
        assert_eq!(r.value("Push/Multicast_none_maintenance"), Some(0.0));
        // Heavy failures → repair traffic on trees.
        assert!(r.value("Push/Multicast_heavy_maintenance").unwrap() > 0.0);
        // Unicast push needs no structure maintenance ever.
        assert_eq!(r.value("Push_heavy_maintenance"), Some(0.0));
        // Failures hurt multicast push consistency.
        assert!(
            r.value("Push/Multicast_heavy_lag_s").unwrap()
                > r.value("Push/Multicast_none_lag_s").unwrap()
        );
    }

    #[test]
    fn policy_extension_validates_recommendations() {
        let r = ext_policy(RunCtx::new(Scale::Smoke), &Registry::disabled());
        // The strict pick actually meets its bound.
        let lag = r.value("strict_2s_pick_lag_s").unwrap();
        let bound = r.value("strict_2s_bound_s").unwrap();
        assert!(lag < bound, "strict pick lag {lag} must meet bound {bound}");
        // The bounded pick meets its bound and undercuts plain TTL traffic.
        let lag60 = r.value("bounded_60s_pick_lag_s").unwrap();
        assert!(lag60 < 60.0, "bounded pick lag {lag60}");
        let pick_traffic = r.value("bounded_60s_pick_traffic_kmkb").unwrap();
        let ttl_traffic = r.value("bounded_60s_ttl_traffic_kmkb").unwrap();
        assert!(
            pick_traffic <= ttl_traffic * 1.1,
            "pick traffic {pick_traffic} should not exceed plain TTL {ttl_traffic}"
        );
    }

    #[test]
    fn adaptive_extension_shapes() {
        let r = ext_adaptive(RunCtx::new(Scale::Smoke), &Registry::disabled());
        // On steady content the prediction pays off.
        assert!(
            r.value("AdaptiveTTL_steady_lag_s").unwrap() < r.value("TTL_steady_lag_s").unwrap()
        );
        // On bursty content it burns polls relative to Algorithm 1.
        assert!(
            r.value("AdaptiveTTL_bursty_polls").unwrap()
                > r.value("Self_bursty_polls").unwrap() * 2.0
        );
    }
}
