//! Process-level performance probes for the bench harness and the
//! consolidated run summary: peak resident set size (from the kernel's
//! accounting) and a total-allocation estimate (from a counting global
//! allocator the `experiments` binary installs).
//!
//! Both numbers are wall-clock-class telemetry — they vary run to run and
//! between machines — so every field derived from them is listed in
//! [`crate::obs_out::VOLATILE_KEYS`] and ignored by `obs-diff`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Peak resident set size of this process in KiB, read from `VmHWM` in
/// `/proc/self/status`. `None` where procfs is unavailable (non-Linux).
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator: every successful
/// allocation adds its size to a relaxed global counter. Install it with
/// `#[global_allocator]` in a binary to make [`total_allocated_bytes`]
/// meaningful there; the overhead is one relaxed atomic add per
/// allocation.
pub struct CountingAlloc;

impl CountingAlloc {
    /// Marks the counter live — called once from the binary so library
    /// consumers can tell "no allocator installed" from "nothing counted".
    pub fn mark_installed() {
        INSTALLED.store(1, Ordering::Relaxed);
    }
}

// SAFETY: delegates every operation to `System`, only adding relaxed
// counter updates on success paths.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            ALLOCATED.fetch_add(new_size.saturating_sub(layout.size()) as u64, Ordering::Relaxed);
        }
        p
    }
}

/// Cumulative bytes allocated since process start, or `None` when
/// [`CountingAlloc`] is not the global allocator of this process.
pub fn total_allocated_bytes() -> Option<u64> {
    (INSTALLED.load(Ordering::Relaxed) == 1).then(|| ALLOCATED.load(Ordering::Relaxed))
}

/// [`total_allocated_bytes`] in MiB, for summary fields.
pub fn total_allocated_mb() -> Option<f64> {
    total_allocated_bytes().map(|b| b as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_positive_on_linux() {
        if let Some(kb) = peak_rss_kb() {
            assert!(kb > 0, "a running process has resident memory");
        }
    }

    #[test]
    fn alloc_estimate_requires_installation() {
        // Library tests run under the default allocator: the counter must
        // report "not installed" rather than a misleading zero.
        assert_eq!(total_allocated_bytes(), None);
        assert_eq!(total_allocated_mb(), None);
    }
}
