//! Process-level performance probes for the bench harness and the
//! consolidated run summary: peak resident set size (from the kernel's
//! accounting) and a total-allocation estimate (from the tagged counting
//! global allocator in `cdnc-obs` the `experiments` binary installs).
//!
//! The old standalone `CountingAlloc` grew into
//! [`cdnc_obs::profile`](cdnc_obs::profile): the same always-on byte/count
//! totals (one relaxed atomic add per allocation), plus opt-in
//! per-subsystem attribution behind `profile::set_enabled`. This module
//! keeps the process-level surface (`peak_rss_kb`, `total_allocated_*`)
//! and re-exports the allocator type so binaries install one allocator for
//! both jobs.
//!
//! Both numbers are wall-clock-class telemetry — they vary run to run and
//! between machines — so every field derived from them is listed in
//! [`crate::obs_out::VOLATILE_KEYS`] and ignored by `obs-diff`.

use cdnc_obs::profile;
pub use cdnc_obs::profile::ProfiledAlloc as CountingAlloc;

/// Peak resident set size of this process in KiB, read from `VmHWM` in
/// `/proc/self/status`. `None` where procfs is unavailable (non-Linux).
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Cumulative bytes allocated since process start, or `None` when
/// [`CountingAlloc`] is not the global allocator of this process.
pub fn total_allocated_bytes() -> Option<u64> {
    profile::total_allocated_bytes()
}

/// Cumulative allocation count since process start, or `None` when
/// [`CountingAlloc`] is not the global allocator of this process.
pub fn total_allocs() -> Option<u64> {
    profile::total_allocs()
}

/// [`total_allocated_bytes`] in MiB, for summary fields.
pub fn total_allocated_mb() -> Option<f64> {
    total_allocated_bytes().map(|b| b as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rss_is_positive_on_linux() {
        if let Some(kb) = peak_rss_kb() {
            assert!(kb > 0, "a running process has resident memory");
        }
    }

    #[test]
    fn alloc_estimate_requires_installation() {
        // Library tests run under the default allocator: the counter must
        // report "not installed" rather than a misleading zero.
        assert_eq!(total_allocated_bytes(), None);
        assert_eq!(total_allocated_mb(), None);
        assert_eq!(total_allocs(), None);
    }
}
