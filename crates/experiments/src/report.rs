//! Figure-report plumbing: a uniform shape for every regenerated figure.

use std::fmt;

/// The regenerated data behind one paper figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureReport {
    /// Figure id, e.g. `"fig6"`.
    pub id: &'static str,
    /// The paper's caption, abbreviated.
    pub title: &'static str,
    /// Printable data rows (already formatted).
    pub rows: Vec<String>,
    /// Headline numbers, for EXPERIMENTS.md and assertions:
    /// `(name, measured)`.
    pub keyvals: Vec<(String, f64)>,
    /// Named `(x, y)` curves (e.g. latency/staleness CDFs) for figures
    /// whose distributions matter, not just their moments. Written to
    /// `<figure>.workload.json` by the artifact layer and rendered as
    /// inline-SVG charts by the HTML report; empty for most figures.
    pub curves: Vec<(String, Vec<(f64, f64)>)>,
}

impl FigureReport {
    /// Creates an empty report for a figure.
    pub fn new(id: &'static str, title: &'static str) -> Self {
        FigureReport { id, title, rows: Vec::new(), keyvals: Vec::new(), curves: Vec::new() }
    }

    /// Appends a formatted data row.
    pub fn row(&mut self, row: impl Into<String>) {
        self.rows.push(row.into());
    }

    /// Records a headline number.
    pub fn keyval(&mut self, name: impl Into<String>, value: f64) {
        self.keyvals.push((name.into(), value));
    }

    /// Records a named `(x, y)` curve.
    pub fn curve(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) {
        self.curves.push((name.into(), points));
    }

    /// Looks up a recorded curve by name.
    pub fn curve_points(&self, name: &str) -> Option<&[(f64, f64)]> {
        self.curves.iter().find(|(n, _)| n == name).map(|(_, p)| p.as_slice())
    }

    /// Looks up a headline number by name.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.keyvals.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Folds replicate runs of one figure into a single report.
///
/// The result keeps the first run's rows and curves (the canonical
/// replicate-0 numbers, labelled as such) and replaces every keyval with
/// the mean across replicates, adding a `<name>__spread` companion holding
/// the half-range `(max − min) / 2`. A single run is returned unchanged.
///
/// Panics if `runs` is empty or the runs disagree on id or keyval layout
/// (replicates of the same figure never do).
pub fn aggregate_replicates(runs: &[FigureReport]) -> FigureReport {
    let first = runs.first().expect("at least one replicate");
    if runs.len() == 1 {
        return first.clone();
    }
    let mut out = FigureReport::new(first.id, first.title);
    out.row(format!("  [aggregate of {} seed replicates; rows show replicate 0]", runs.len()));
    out.rows.extend(first.rows.iter().cloned());
    out.curves.extend(first.curves.iter().cloned());
    for (i, (name, _)) in first.keyvals.iter().enumerate() {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for run in runs {
            assert_eq!(run.id, first.id, "replicates must be runs of one figure");
            let (n, v) = &run.keyvals[i];
            assert_eq!(n, name, "replicates must share keyval layout");
            min = min.min(*v);
            max = max.max(*v);
            sum += v;
        }
        out.keyval(name.clone(), sum / runs.len() as f64);
        out.keyval(format!("{name}__spread"), (max - min) / 2.0);
    }
    out
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        if !self.keyvals.is_empty() {
            writeln!(f, "--- headline numbers ---")?;
            for (name, value) in &self.keyvals {
                writeln!(f, "{name}: {value:.4}")?;
            }
        }
        Ok(())
    }
}

/// Formats a CDF as a fixed set of `x fraction` rows.
pub fn cdf_rows(cdf: &cdnc_simcore::stats::Cdf, lo: f64, hi: f64, points: usize) -> Vec<String> {
    cdf.series(lo, hi, points)
        .into_iter()
        .map(|(x, frac)| format!("  x={x:>10.2}  cdf={frac:.4}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_simcore::stats::Cdf;

    #[test]
    fn report_roundtrip() {
        let mut r = FigureReport::new("fig0", "test");
        r.row("  a=1");
        r.keyval("metric", 2.5);
        assert_eq!(r.value("metric"), Some(2.5));
        assert_eq!(r.value("absent"), None);
        let text = r.to_string();
        assert!(text.contains("fig0"));
        assert!(text.contains("a=1"));
        assert!(text.contains("metric: 2.5000"));
    }

    #[test]
    fn curves_ride_along_and_survive_aggregation() {
        let mut r0 = FigureReport::new("fig0", "test");
        r0.keyval("metric", 1.0);
        r0.curve("latency_cdf", vec![(0.0, 0.0), (1.0, 1.0)]);
        let mut r1 = FigureReport::new("fig0", "test");
        r1.keyval("metric", 3.0);
        r1.curve("latency_cdf", vec![(0.0, 0.5), (1.0, 1.0)]);
        let agg = aggregate_replicates(&[r0.clone(), r1]);
        assert_eq!(agg.value("metric"), Some(2.0));
        // Replicate 0's curves are the canonical ones.
        assert_eq!(agg.curve_points("latency_cdf"), Some(&[(0.0, 0.0), (1.0, 1.0)][..]));
        assert_eq!(agg.curve_points("absent"), None);
        // The printed form stays curve-free: distributions go to the
        // artifact, not the terminal.
        assert!(!agg.to_string().contains("latency_cdf"));
    }

    #[test]
    fn cdf_rows_formats_series() {
        let cdf = Cdf::from_samples([1.0, 2.0, 3.0]);
        let rows = cdf_rows(&cdf, 0.0, 3.0, 4);
        assert_eq!(rows.len(), 4);
        assert!(rows[3].contains("cdf=1.0000"));
    }
}
