//! Reproductions of the measurement figures (paper §3, Figs. 3–12).
//!
//! All functions take a crawl [`Trace`] (see [`crate::scale::Scale`]) and
//! return a [`FigureReport`] with the same rows/series the paper plots.

use crate::report::{cdf_rows, FigureReport};
use cdnc_analysis::causes::{
    detect_absences, distance_vs_consistency, inconsistency_around_absences,
    inconsistency_by_absence_length_pooled, isp_inconsistency, provider_inconsistency_lengths,
    provider_response_times,
};
use cdnc_analysis::inconsistency::{
    corrected_polls_by_server, day_episodes, episodes_of_server, first_appearances_for,
};
use cdnc_analysis::tree_test::{
    daily_ranks, fraction_below_ttl, group_daily_mean_inconsistency, max_inconsistency_cdf,
    min_max_daily_means, rank_churn,
};
use cdnc_analysis::ttl_inference::{deviation_curve, infer_ttl, theory_rmse};
use cdnc_analysis::user_view::{
    all_continuous_times, redirect_fraction_cdf, stale_server_fraction,
};
use cdnc_geo::cluster_by_location;
use cdnc_simcore::stats::Cdf;
use cdnc_trace::Trace;

/// All-days stale-episode lengths across every server (the paper's
/// "inconsistency lengths of all content requests").
fn all_episode_lengths(trace: &Trace) -> Vec<f64> {
    trace
        .days
        .iter()
        .flat_map(|day| day_episodes(day, &trace.servers, None))
        .map(|e| e.length_s)
        .collect()
}

/// Inner-cluster episode lengths: α restricted to geographically collocated
/// servers (paper §3.4.1).
fn inner_cluster_lengths(trace: &Trace) -> Vec<f64> {
    let points: Vec<_> = trace.servers.iter().map(|s| s.location).collect();
    let clusters = cluster_by_location(&points, 0);
    let mut lengths = Vec::new();
    for day in &trace.days {
        let polls = corrected_polls_by_server(day, &trace.servers);
        for cluster in &clusters {
            if cluster.len() < 2 {
                continue;
            }
            let members: Vec<u32> = cluster.members.iter().map(|&m| m as u32).collect();
            let alpha = first_appearances_for(&polls, Some(&members));
            for &m in &members {
                if let Some(server_polls) = polls.get(&m) {
                    lengths.extend(
                        episodes_of_server(m, server_polls, &alpha).iter().map(|e| e.length_s),
                    );
                }
            }
        }
    }
    lengths
}

/// Fig. 3: CDF of inconsistency lengths of all requests served by the CDN.
pub fn fig3(trace: &Trace) -> FigureReport {
    let mut report = FigureReport::new("fig3", "CDF of inconsistency lengths (all requests)");
    let lengths = all_episode_lengths(trace);
    let cdf = Cdf::from_samples(lengths);
    for row in cdf_rows(&cdf, 0.0, 200.0, 21) {
        report.row(row);
    }
    report.keyval("fraction_below_10s (paper 0.101)", cdf.fraction_at_most(10.0));
    report.keyval("fraction_above_50s (paper 0.203)", 1.0 - cdf.fraction_at_most(50.0));
    report.keyval("mean_s (paper ~40)", cdf.mean());
    report
}

/// Fig. 4: user-perspective consistency (five panels).
pub fn fig4(trace: &Trace) -> FigureReport {
    let mut report = FigureReport::new("fig4", "User-perspective consistency");
    // (a) redirect fractions.
    let redirects = redirect_fraction_cdf(trace);
    report.row("(a) CDF of per-user redirect fraction:");
    for row in cdf_rows(&redirects, 0.0, 0.4, 11) {
        report.row(row);
    }
    report.keyval("redirect_median (paper mode 0.13-0.17)", redirects.median().unwrap_or(f64::NAN));
    // (b) percent of inconsistent servers per day.
    report.row("(b) average stale-server fraction per day:");
    let mut fractions = Vec::new();
    for day in &trace.days {
        let f = stale_server_fraction(day, &trace.servers);
        report.row(format!("  day {:>2}  stale_fraction={f:.4}", day.day));
        fractions.push(f);
    }
    let mean_frac = fractions.iter().sum::<f64>() / fractions.len().max(1) as f64;
    report.keyval("stale_server_fraction_mean (paper ~0.11)", mean_frac);
    // (c)/(d) continuous (in)consistency times.
    let (cons, incons) = all_continuous_times(trace, 1);
    report.row("(c) CDF of continuous consistency time:");
    for row in cdf_rows(&cons, 0.0, 2_000.0, 11) {
        report.row(row);
    }
    report
        .keyval("continuous_consistency_median_s (paper ~160)", cons.median().unwrap_or(f64::NAN));
    report.keyval("continuous_consistency_below_400s (paper 0.824)", cons.fraction_at_most(400.0));
    report.row("(d) CDF of continuous inconsistency time:");
    for row in cdf_rows(&incons, 0.0, 60.0, 13) {
        report.row(row);
    }
    report.keyval("continuous_inconsistency_below_10s (paper 0.70)", incons.fraction_at_most(10.0));
    report
        .keyval("continuous_inconsistency_below_20s (paper ~0.99)", incons.fraction_at_most(20.0));
    // (e) inconsistency time vs visit frequency.
    report.row("(e) continuous inconsistency percentiles vs visit frequency:");
    for stride in 1..=6usize {
        let (_, inc) = all_continuous_times(trace, stride);
        if inc.is_empty() {
            continue;
        }
        report.row(format!(
            "  visit every {:>3}s: p5={:>6.1}s median={:>6.1}s p95={:>6.1}s",
            stride as u64 * trace.poll_interval.as_secs(),
            inc.percentile(5.0).unwrap(),
            inc.median().unwrap(),
            inc.percentile(95.0).unwrap()
        ));
        if stride == 1 {
            report.keyval("fig4e_p95_at_10s", inc.percentile(95.0).unwrap());
        }
        if stride == 6 {
            report.keyval("fig4e_p95_at_60s", inc.percentile(95.0).unwrap());
        }
    }
    report
}

/// Fig. 5: inner-cluster inconsistency CDF (≈ linear on [0, TTL]).
pub fn fig5(trace: &Trace) -> FigureReport {
    let mut report =
        FigureReport::new("fig5", "Inner-cluster inconsistency CDF (linear on [0, TTL])");
    let lengths = inner_cluster_lengths(trace);
    let cdf = Cdf::from_samples(lengths.clone());
    for row in cdf_rows(&cdf, 0.0, 100.0, 21) {
        report.row(row);
    }
    report.keyval("fraction_below_10s (paper 0.315)", cdf.fraction_at_most(10.0));
    // Linearity on [0, 60]: RMSE against the uniform CDF.
    if let Some(rmse) = theory_rmse(&lengths, 60.0, 61) {
        report.keyval("uniformity_rmse_on_0_60 (small = linear)", rmse);
    }
    report
}

/// Fig. 6: TTL inference — deviation curve and trace-vs-theory RMSE.
///
/// Inference runs on the *global-α* lengths (Fig. 3 data): with many
/// servers, the first global appearance tracks the publish time, so each
/// server's staleness is ≈ U[0, TTL] plus delay extras — which is what
/// makes the deviation statistic dip at the true TTL.
pub fn fig6(trace: &Trace) -> FigureReport {
    let mut report = FigureReport::new("fig6", "TTL inference by recursive refinement");
    let lengths = all_episode_lengths(trace);
    let candidates: Vec<f64> = (40..=80).step_by(2).map(|c| c as f64).collect();
    report.row("(a) deviation from TTL per candidate:");
    for (c, d) in deviation_curve(&lengths, &candidates) {
        report.row(format!("  candidate={c:>5.0}s deviation={d:.4}"));
    }
    let inferred = infer_ttl(&lengths, &candidates).unwrap_or(f64::NAN);
    report.keyval("inferred_ttl_s (ground truth 60)", inferred);
    report.row("(b) trace vs theory RMSE:");
    let rmse60 = theory_rmse(&lengths, 60.0, 61).unwrap_or(f64::NAN);
    let rmse80 = theory_rmse(&lengths, 80.0, 81).unwrap_or(f64::NAN);
    report.row(format!("  TTL=60s rmse={rmse60:.4}  (paper 0.0462)"));
    report.row(format!("  TTL=80s rmse={rmse80:.4}  (paper 0.0955)"));
    report.keyval("rmse_at_60 (paper 0.0462)", rmse60);
    report.keyval("rmse_at_80 (paper 0.0955)", rmse80);
    report
}

/// Fig. 7: inconsistency of data served by the provider origin.
pub fn fig7(trace: &Trace) -> FigureReport {
    let mut report = FigureReport::new("fig7", "Provider origin inconsistency CDF");
    let lengths: Vec<f64> = trace.days.iter().flat_map(provider_inconsistency_lengths).collect();
    if lengths.is_empty() {
        report.row("  origin replicas showed no stale episodes");
        report.keyval("fraction_below_10s (paper 0.902)", 1.0);
        report.keyval("mean_s (paper 3.43)", 0.0);
        return report;
    }
    let cdf = Cdf::from_samples(lengths);
    for row in cdf_rows(&cdf, 0.0, 60.0, 13) {
        report.row(row);
    }
    report.keyval("fraction_below_10s (paper 0.902)", cdf.fraction_at_most(10.0));
    report.keyval("fraction_above_50s (paper 0.012)", 1.0 - cdf.fraction_at_most(50.0));
    report.keyval("mean_s (paper 3.43)", cdf.mean());
    report
}

/// Fig. 8: consistency ratio vs provider-server distance.
pub fn fig8(trace: &Trace) -> FigureReport {
    let mut report = FigureReport::new("fig8", "Consistency ratio vs provider distance");
    let (centres, means, r) = distance_vs_consistency(trace, 0, 2_000.0);
    for (c, m) in centres.iter().zip(&means) {
        report.row(format!("  distance≈{c:>8.0}km  avg_consistency_ratio={m:.4}"));
    }
    report.keyval("pearson_r (paper 0.11 — weak)", r);
    report
}

/// Fig. 9: intra- vs inter-ISP inconsistency.
pub fn fig9(trace: &Trace) -> FigureReport {
    let mut report = FigureReport::new("fig9", "Intra- vs inter-ISP inconsistency");
    let clusters = isp_inconsistency(trace, 0);
    let mut increments = Vec::new();
    for c in &clusters {
        if c.intra.is_empty() || c.inter.is_empty() {
            continue;
        }
        let intra = Cdf::from_samples(c.intra.clone());
        let inter = Cdf::from_samples(c.inter.clone());
        report.row(format!(
            "  isp{:>3} ({:>3} servers): intra p50={:>5.1} p95={:>6.1} | inter p50={:>5.1} p95={:>6.1}",
            c.isp,
            c.servers,
            intra.median().unwrap(),
            intra.percentile(95.0).unwrap(),
            inter.median().unwrap(),
            inter.percentile(95.0).unwrap()
        ));
        increments.push(inter.mean() - intra.mean());
    }
    if !increments.is_empty() {
        let min = increments.iter().copied().fold(f64::INFINITY, f64::min);
        let max = increments.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = increments.iter().sum::<f64>() / increments.len() as f64;
        report.keyval("inter_minus_intra_min_s (paper 3.69)", min);
        report.keyval("inter_minus_intra_max_s (paper 23.2)", max);
        report.keyval("inter_minus_intra_mean_s", mean);
    }
    report
}

/// Fig. 10: provider bandwidth and server absence effects.
pub fn fig10(trace: &Trace) -> FigureReport {
    let mut report = FigureReport::new("fig10", "Provider response times and absence effects");
    // (a) provider response times.
    let rt = provider_response_times(&trace.days[0]);
    report.row("(a) provider response time CDF:");
    for row in cdf_rows(&rt, 0.0, 2.5, 11) {
        report.row(row);
    }
    report.keyval("response_below_1.5s (paper 0.90)", rt.fraction_at_most(1.5));
    report.keyval("response_min_s (paper 0.5)", rt.min().unwrap_or(0.0));
    report.keyval("response_max_s (paper 2.1)", rt.max().unwrap_or(0.0));
    // (b) absence lengths.
    let mut lengths = Vec::new();
    for day in &trace.days {
        lengths.extend(detect_absences(day, trace.poll_interval).iter().map(|a| a.length_s));
    }
    report.row("(b) absence length CDF:");
    if !lengths.is_empty() {
        let cdf = Cdf::from_samples(lengths);
        for row in cdf_rows(&cdf, 0.0, 500.0, 11) {
            report.row(row);
        }
        report.keyval("absence_below_10s (paper 0.304)", cdf.fraction_at_most(10.0));
        report.keyval("absence_below_50s (paper 0.931)", cdf.fraction_at_most(50.0));
        report.keyval("absence_max_s (paper 500)", cdf.max().unwrap_or(0.0));
    }
    // (c) inconsistency vs absence length (pooled over all days, as the
    // paper pools its 15 days to populate the long-absence bins).
    let (bounds, means) = inconsistency_by_absence_length_pooled(trace);
    report.row("(c) mean inconsistency by absence-length bin:");
    for (b, m) in bounds.iter().zip(&means) {
        report.row(format!("  absence≤{b:>5.0}s  mean_inconsistency={m:>6.1}s"));
    }
    report.keyval("baseline_mean_s (paper 38.1)", means[0]);
    // The paper's trend: 38.1 s → 43.9 s over absences of 0 → 400 s, i.e. a
    // slope of ≈ 0.0145 s of extra inconsistency per second of absence.
    // Fit the same slope over the populated bins (bin 0 anchors at x = 0).
    let mut xs = vec![0.0];
    let mut ys = vec![means[0]];
    for (b, m) in bounds[1..].iter().zip(&means[1..]) {
        if *m > 0.0 {
            xs.push(b - 25.0); // bin centre
            ys.push(*m);
        }
    }
    if xs.len() >= 3 {
        let (slope, _) = cdnc_simcore::stats::linear_fit(&xs, &ys);
        report.keyval("absence_slope_s_per_s (paper ~0.0145)", slope);
        report.keyval("absence_increase_at_400s (paper ~5.8s)", (slope * 400.0).max(0.0));
    }
    // (d) inconsistency around absences.
    report.row("(d) mean inconsistency near absences (window 60 s):");
    let (before, after) = inconsistency_around_absences(trace, 0, 60.0);
    for (i, (b, a)) in before.iter().zip(&after).enumerate() {
        report.row(format!(
            "  absence {:>3}-{:>3}s: before={b:>6.1}s after={a:>6.1}s",
            i * 100,
            (i + 1) * 100
        ));
    }
    report
}

/// Fig. 11: static multicast tree non-existence (rank churn).
pub fn fig11(trace: &Trace) -> FigureReport {
    let mut report = FigureReport::new("fig11", "Static multicast-tree test: cluster rank churn");
    let points: Vec<_> = trace.servers.iter().map(|s| s.location).collect();
    let groups: Vec<Vec<u32>> = cluster_by_location(&points, 0)
        .into_iter()
        .filter(|c| c.len() >= 2)
        .map(|c| c.members.into_iter().map(|m| m as u32).collect())
        .collect();
    let means = group_daily_mean_inconsistency(trace, &groups);
    let minmax = min_max_daily_means(&means);
    report.row("(a) per-cluster min/max of daily mean inconsistency:");
    for (g, &(mn, mx)) in minmax.iter().enumerate().take(20) {
        report.row(format!("  cluster {g:>3}: min={mn:>6.1}s max={mx:>6.1}s"));
    }
    let ranks = daily_ranks(&means);
    let churn = rank_churn(&ranks);
    report.keyval("cluster_rank_churn (0 = static tree)", churn);
    // (c)/(d): per-server ranks inside the two largest clusters.
    let mut by_size: Vec<&Vec<u32>> = groups.iter().collect();
    by_size.sort_by_key(|g| std::cmp::Reverse(g.len()));
    for (label, cluster) in ["A", "B"].iter().zip(by_size.iter().take(2)) {
        let singles: Vec<Vec<u32>> = cluster.iter().map(|&s| vec![s]).collect();
        let server_means = group_daily_mean_inconsistency(trace, &singles);
        let server_ranks = daily_ranks(&server_means);
        let churn = rank_churn(&server_ranks);
        report.row(format!(
            "cluster {label} ({} servers): per-server rank churn = {churn:.3}",
            cluster.len()
        ));
        report.keyval(format!("cluster_{label}_server_rank_churn"), churn);
    }
    report
}

/// Fig. 13 (the paper's architecture-deduction diagram): the automated
/// §3.6 verdict over the whole trace.
pub fn fig13(trace: &Trace) -> FigureReport {
    let mut report =
        FigureReport::new("fig13", "Architecture deduction: the automated §3.6 verdict");
    let verdict = cdnc_analysis::analyze(trace);
    for line in verdict.to_string().lines() {
        report.row(format!("  {line}"));
    }
    report.keyval("inferred_ttl_s (ground truth 60)", verdict.inferred_ttl_s.unwrap_or(f64::NAN));
    report.keyval("ttl_contribution (paper ~0.75)", verdict.ttl_contribution);
    report
        .keyval("uses_unicast_ttl (ground truth 1)", f64::from(u8::from(verdict.uses_unicast_ttl)));
    report
}

/// Fig. 12: dynamic multicast tree non-existence (max-inconsistency CDF).
pub fn fig12(trace: &Trace) -> FigureReport {
    let mut report = FigureReport::new(
        "fig12",
        "Dynamic multicast-tree test: daily max inconsistency below TTL",
    );
    for (label, day) in ["A", "B"].iter().zip([0usize, trace.days.len() - 1]) {
        let cdf = max_inconsistency_cdf(trace, day);
        if cdf.is_empty() {
            continue;
        }
        report.row(format!("day {label} max-inconsistency CDF:"));
        for row in cdf_rows(&cdf, 0.0, 360.0, 7) {
            report.row(row);
        }
        let frac = fraction_below_ttl(trace, day, 60.0);
        report.keyval(format!("day_{label}_fraction_below_60s (paper 0.767/0.869)"), frac);
        // Our ground truth adds explicit fetch/origin delays on top of the
        // TTL wait, so also report the fraction below TTL + delay slack —
        // the unicast-vs-multicast discriminator (multicast would put most
        // servers near depth × TTL).
        report.keyval(
            format!("day_{label}_fraction_below_90s (TTL + delay slack)"),
            fraction_below_ttl(trace, day, 90.0),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use cdnc_trace::crawl;

    fn trace() -> Trace {
        crawl(&Scale::Smoke.crawl_config())
    }

    #[test]
    fn fig3_shape() {
        let t = trace();
        let r = fig3(&t);
        let below10 = r.value("fraction_below_10s (paper 0.101)").unwrap();
        let mean = r.value("mean_s (paper ~40)").unwrap();
        assert!((0.02..0.40).contains(&below10), "below10 {below10}");
        assert!((20.0..70.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn fig6_recovers_ttl() {
        let t = trace();
        let r = fig6(&t);
        let ttl = r.value("inferred_ttl_s (ground truth 60)").unwrap();
        assert!((52.0..72.0).contains(&ttl), "inferred {ttl}");
        let rmse60 = r.value("rmse_at_60 (paper 0.0462)").unwrap();
        let rmse80 = r.value("rmse_at_80 (paper 0.0955)").unwrap();
        assert!(rmse60 < rmse80, "true TTL must fit better: {rmse60} vs {rmse80}");
    }

    #[test]
    fn fig7_origin_nearly_fresh() {
        let t = trace();
        let r = fig7(&t);
        let below10 = r.value("fraction_below_10s (paper 0.902)").unwrap();
        assert!(below10 > 0.6, "origin below10 {below10}");
    }

    #[test]
    fn fig12_majority_below_ttl_plus_slack() {
        let t = trace();
        let r = fig12(&t);
        let frac = r.value("day_A_fraction_below_90s (TTL + delay slack)").unwrap();
        assert!(frac > 0.5, "day A fraction below TTL+slack = {frac}");
    }
}
