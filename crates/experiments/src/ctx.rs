//! Execution context threaded through every figure runner: the scale to run
//! at, the worker pool batches fan out on, and the replicate index for
//! multi-seed runs.
//!
//! The context never changes *what* a figure computes — only how wide it
//! runs (`pool`) and which seed replicate it draws (`replicate`). Replicate
//! 0 is the canonical run whose numbers EXPERIMENTS.md records; replicate
//! `r > 0` re-derives every base seed through
//! [`derive_seed`](cdnc_simcore::derive_seed), giving statistically
//! independent repetitions that stay reproducible by index.

use crate::scale::Scale;
use cdnc_par::Pool;
use cdnc_simcore::derive_seed;

/// How one figure run executes: scale, parallelism, seed replicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunCtx {
    /// Experiment scale (sweep sizes, server counts).
    pub scale: Scale,
    /// Worker pool simulation batches fan out on (serial by default).
    pub pool: Pool,
    /// Replicate index; 0 = the canonical seeds.
    pub replicate: u64,
}

impl RunCtx {
    /// The canonical serial context for a scale — exactly the behaviour of
    /// the pre-`--jobs` runners.
    pub fn new(scale: Scale) -> RunCtx {
        RunCtx { scale, pool: Pool::serial(), replicate: 0 }
    }

    /// A context fanning batches out on `pool`.
    pub fn with_pool(scale: Scale, pool: Pool) -> RunCtx {
        RunCtx { scale, pool, replicate: 0 }
    }

    /// This context switched to replicate `r`.
    pub fn replicate(self, r: u64) -> RunCtx {
        RunCtx { replicate: r, ..self }
    }

    /// The seed a component seeded with `base` uses under this context:
    /// `base` itself on replicate 0, stream `replicate` of `base` otherwise.
    pub fn seed(&self, base: u64) -> u64 {
        if self.replicate == 0 {
            base
        } else {
            derive_seed(base, self.replicate)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicate_zero_keeps_canonical_seeds() {
        let ctx = RunCtx::new(Scale::Smoke);
        assert_eq!(ctx.seed(42), 42);
        assert_eq!(ctx.seed(7), 7);
    }

    #[test]
    fn replicates_derive_distinct_stable_seeds() {
        let r1 = RunCtx::new(Scale::Smoke).replicate(1);
        let r2 = RunCtx::new(Scale::Smoke).replicate(2);
        assert_ne!(r1.seed(42), 42);
        assert_ne!(r1.seed(42), r2.seed(42));
        assert_eq!(r1.seed(42), derive_seed(42, 1), "replicates are derive_seed streams");
    }
}
