//! Reproductions of the trace-driven evaluation figures (paper §4,
//! Figs. 14–20).

use crate::ctx::RunCtx;
use crate::report::FigureReport;
use crate::scale::Scale;
use cdnc_core::{run_with_obs, MethodKind, Scheme, SimConfig, SimReport};
use cdnc_obs::Registry;
use cdnc_par::Pool;
use cdnc_simcore::{SimDuration, SimRng};
use cdnc_trace::UpdateSequence;

/// The §4 replayed content: one live-game day, fixed seed.
pub fn section4_updates() -> UpdateSequence {
    UpdateSequence::live_game(&mut SimRng::seed_from_u64(42))
}

/// The §4 replayed content for one replicate of a run (replicate 0 is the
/// canonical seed-42 day whose numbers EXPERIMENTS.md records).
pub fn section4_updates_for(ctx: RunCtx) -> UpdateSequence {
    UpdateSequence::live_game(&mut SimRng::seed_from_u64(ctx.seed(42)))
}

/// Runs a batch of simulations serially. Equivalent to
/// [`run_batch_on`] with a serial pool.
pub fn run_batch(configs: Vec<SimConfig>, obs: &Registry) -> Vec<SimReport> {
    run_batch_on(configs, obs, &Pool::serial())
}

/// Runs a batch of simulations fanned out on `pool`, one task per
/// configuration. Each task records into its own registry shard and the
/// shards are absorbed into `obs` in task-index order after the join — even
/// for a serial pool — so the metrics, events and traces accumulated into
/// `obs` are bit-identical for every worker count (pass
/// [`Registry::disabled`] for uninstrumented runs).
pub fn run_batch_on(configs: Vec<SimConfig>, obs: &Registry, pool: &Pool) -> Vec<SimReport> {
    // Run-health accounting: announce the batch up front so the heartbeat's
    // ETA sees the full denominator, then tick one completion per absorbed
    // task (shards share the parent's live health state, so per-event
    // progress streams from the workers as they run).
    obs.health().add_sims(configs.len() as u64);
    let task = |_: usize, cfg: &SimConfig| {
        // Shard span paths must not inherit the spawning thread's open
        // spans (inline tasks would nest where worker threads don't).
        let _detached = cdnc_obs::detach_spans();
        let shard = obs.shard();
        let report = run_with_obs(cfg, &shard);
        (report, shard)
    };
    // The timed map costs `Instant` reads per chunk, so the unobserved
    // path keeps using the plain map.
    let shards = if obs.timeprof_enabled() {
        let (shards, stats) = pool.map_slice_timed(&configs, task);
        obs.record_worker_use(&crate::timeprof_out::worker_use(&stats));
        shards
    } else {
        pool.map_slice(&configs, task)
    };
    shards
        .into_iter()
        .map(|(report, shard)| {
            obs.absorb(&shard);
            obs.health().sim_done();
            report
        })
        .collect()
}

fn section4_config(ctx: RunCtx, scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::section4(scheme, section4_updates_for(ctx));
    cfg.servers = ctx.scale.section4_servers();
    cfg.seed = ctx.seed(cfg.seed);
    cfg
}

const METHODS: [MethodKind; 3] = [MethodKind::Push, MethodKind::Invalidation, MethodKind::Ttl];

/// Fig. 14: per-server and per-user inconsistency under unicast.
pub fn fig14(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new("fig14", "Inconsistency in the unicast infrastructure");
    let reports = run_batch_on(
        METHODS.iter().map(|&m| section4_config(ctx, Scheme::Unicast(m))).collect(),
        obs,
        &ctx.pool,
    );
    for r in &reports {
        report.row(format!(
            "  {:<13} mean server inconsistency = {:>7.3}s   mean user inconsistency = {:>7.3}s",
            r.scheme_label,
            r.mean_server_lag_s(),
            r.mean_user_lag_s()
        ));
        report.keyval(format!("{}_server_s", r.scheme_label), r.mean_server_lag_s());
        report.keyval(format!("{}_user_s", r.scheme_label), r.mean_user_lag_s());
    }
    report
}

/// Fig. 15: the same three methods on the binary multicast tree.
pub fn fig15(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report =
        FigureReport::new("fig15", "Inconsistency in the multicast-tree infrastructure");
    let reports = run_batch_on(
        METHODS
            .iter()
            .map(|&m| section4_config(ctx, Scheme::Multicast { method: m, arity: 2 }))
            .collect(),
        obs,
        &ctx.pool,
    );
    for r in &reports {
        report.row(format!(
            "  {:<22} mean server = {:>7.3}s   mean user = {:>7.3}s",
            r.scheme_label,
            r.mean_server_lag_s(),
            r.mean_user_lag_s()
        ));
        report.keyval(format!("{}_server_s", r.scheme_label), r.mean_server_lag_s());
        report.keyval(format!("{}_user_s", r.scheme_label), r.mean_user_lag_s());
    }
    report
}

/// Fig. 16: consistency-maintenance traffic cost (km·KB), 3 methods × 2
/// infrastructures.
pub fn fig16(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new("fig16", "Traffic cost (km·KB) per method × infra");
    let mut configs = Vec::new();
    for &m in &METHODS {
        configs.push(section4_config(ctx, Scheme::Unicast(m)));
        configs.push(section4_config(ctx, Scheme::Multicast { method: m, arity: 2 }));
    }
    let reports = run_batch_on(configs, obs, &ctx.pool);
    for pair in reports.chunks(2) {
        let (uni, multi) = (&pair[0], &pair[1]);
        report.row(format!(
            "  {:<13} unicast = {:>12.3e} km·KB   multicast = {:>12.3e} km·KB",
            uni.scheme_label,
            uni.traffic.km_kb(),
            multi.traffic.km_kb()
        ));
        report.keyval(format!("{}_unicast_kmkb", uni.scheme_label), uni.traffic.km_kb());
        report.keyval(format!("{}_multicast_kmkb", uni.scheme_label), multi.traffic.km_kb());
    }
    report
}

/// Fig. 17: TTL-method traffic cost vs content-server TTL.
pub fn fig17(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new("fig17", "Traffic cost vs content-server TTL");
    let ttls = ctx.scale.server_ttl_sweep_s();
    let mut configs = Vec::new();
    for &ttl in &ttls {
        for scheme in [
            Scheme::Unicast(MethodKind::Ttl),
            Scheme::Multicast { method: MethodKind::Ttl, arity: 2 },
        ] {
            let mut cfg = section4_config(ctx, scheme);
            cfg.server_ttl = SimDuration::from_secs(ttl);
            configs.push(cfg);
        }
    }
    let reports = run_batch_on(configs, obs, &ctx.pool);
    for (i, pair) in reports.chunks(2).enumerate() {
        let ttl = ttls[i];
        report.row(format!(
            "  TTL={ttl:>3}s  unicast = {:>12.3e} km·KB   multicast = {:>12.3e} km·KB",
            pair[0].traffic.km_kb(),
            pair[1].traffic.km_kb()
        ));
        report.keyval(format!("unicast_kmkb_ttl{ttl}"), pair[0].traffic.km_kb());
        report.keyval(format!("multicast_kmkb_ttl{ttl}"), pair[1].traffic.km_kb());
    }
    report
}

/// Fig. 18: Invalidation with varying end-user TTL: inconsistency
/// percentiles and traffic cost.
pub fn fig18(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report =
        FigureReport::new("fig18", "Invalidation vs end-user TTL (inconsistency + cost)");
    let user_ttls: Vec<u64> = match ctx.scale {
        Scale::Smoke => vec![10, 60, 120],
        _ => vec![10, 30, 60, 90, 120],
    };
    let mut configs = Vec::new();
    for &ttl in &user_ttls {
        for scheme in [
            Scheme::Unicast(MethodKind::Invalidation),
            Scheme::Multicast { method: MethodKind::Invalidation, arity: 2 },
        ] {
            let mut cfg = section4_config(ctx, scheme);
            cfg.user_ttl = SimDuration::from_secs(ttl);
            configs.push(cfg);
        }
    }
    let reports = run_batch_on(configs, obs, &ctx.pool);
    for (i, pair) in reports.chunks(2).enumerate() {
        let ttl = user_ttls[i];
        let (uni, multi) = (&pair[0], &pair[1]);
        report.row(format!(
            "  user TTL={ttl:>3}s  unicast p5/p50/p95 = {:>6.2}/{:>6.2}/{:>6.2}s cost={:.3e} | multicast p50 = {:>6.2}s cost={:.3e}",
            uni.server_lag_percentile(5.0).unwrap_or(f64::NAN),
            uni.server_lag_percentile(50.0).unwrap_or(f64::NAN),
            uni.server_lag_percentile(95.0).unwrap_or(f64::NAN),
            uni.traffic.km_kb(),
            multi.server_lag_percentile(50.0).unwrap_or(f64::NAN),
            multi.traffic.km_kb()
        ));
        report.keyval(
            format!("unicast_median_s_uttl{ttl}"),
            uni.server_lag_percentile(50.0).unwrap_or(f64::NAN),
        );
        report.keyval(format!("unicast_kmkb_uttl{ttl}"), uni.traffic.km_kb());
        report.keyval(format!("multicast_kmkb_uttl{ttl}"), multi.traffic.km_kb());
    }
    report
}

/// Fig. 19: scalability vs update packet size.
pub fn fig19(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new("fig19", "Server inconsistency vs update packet size");
    let sizes = ctx.scale.fig19_sizes_kb();
    for (infra_name, make) in [("unicast", None), ("multicast", Some(2usize))] {
        let mut configs = Vec::new();
        for &kb in &sizes {
            for &m in &METHODS {
                let scheme = match make {
                    None => Scheme::Unicast(m),
                    Some(arity) => Scheme::Multicast { method: m, arity },
                };
                let mut cfg = section4_config(ctx, scheme);
                cfg.update_packet_kb = kb;
                configs.push(cfg);
            }
        }
        let reports = run_batch_on(configs, obs, &ctx.pool);
        for (i, chunk) in reports.chunks(METHODS.len()).enumerate() {
            let kb = sizes[i];
            report.row(format!(
                "  [{infra_name}] {kb:>5.0} KB: Push={:>9.3}s Invalidation={:>9.3}s TTL={:>9.3}s",
                chunk[0].mean_server_lag_s(),
                chunk[1].mean_server_lag_s(),
                chunk[2].mean_server_lag_s()
            ));
            for r in chunk {
                report.keyval(
                    format!("{infra_name}_{}_s_at_{kb:.0}kb", r.scheme_label),
                    r.mean_server_lag_s(),
                );
            }
        }
    }
    report
}

/// Fig. 20: scalability vs network size.
pub fn fig20(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new("fig20", "Server inconsistency vs network size");
    let sizes = ctx.scale.fig20_sizes();
    for (infra_name, arity) in [("unicast", None), ("multicast", Some(2usize))] {
        let mut configs = Vec::new();
        for &n in &sizes {
            for &m in &METHODS {
                let scheme = match arity {
                    None => Scheme::Unicast(m),
                    Some(a) => Scheme::Multicast { method: m, arity: a },
                };
                let mut cfg = section4_config(ctx, scheme);
                cfg.servers = n;
                configs.push(cfg);
            }
        }
        let reports = run_batch_on(configs, obs, &ctx.pool);
        for (i, chunk) in reports.chunks(METHODS.len()).enumerate() {
            let n = sizes[i];
            report.row(format!(
                "  [{infra_name}] N={n:>4}: Push={:>8.3}s Invalidation={:>8.3}s TTL={:>8.3}s",
                chunk[0].mean_server_lag_s(),
                chunk[1].mean_server_lag_s(),
                chunk[2].mean_server_lag_s()
            ));
            for r in chunk {
                report.keyval(
                    format!("{infra_name}_{}_s_at_n{n}", r.scheme_label),
                    r.mean_server_lag_s(),
                );
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_ordering_matches_paper() {
        let r = fig14(RunCtx::new(Scale::Smoke), &Registry::disabled());
        let push = r.value("Push_server_s").unwrap();
        let inval = r.value("Invalidation_server_s").unwrap();
        let ttl = r.value("TTL_server_s").unwrap();
        assert!(push < inval && inval < ttl, "Push {push} < Inval {inval} < TTL {ttl}");
    }

    #[test]
    fn fig16_multicast_saves_cost() {
        let r = fig16(RunCtx::new(Scale::Smoke), &Registry::disabled());
        for m in ["Push", "Invalidation", "TTL"] {
            let uni = r.value(&format!("{m}_unicast_kmkb")).unwrap();
            let multi = r.value(&format!("{m}_multicast_kmkb")).unwrap();
            assert!(multi < uni, "{m}: multicast {multi} must beat unicast {uni}");
        }
    }

    #[test]
    fn fig17_cost_decreases_with_ttl() {
        let r = fig17(RunCtx::new(Scale::Smoke), &Registry::disabled());
        let at10 = r.value("unicast_kmkb_ttl10").unwrap();
        let at60 = r.value("unicast_kmkb_ttl60").unwrap();
        assert!(at60 < at10, "longer TTL must cost less: {at60} vs {at10}");
    }

    #[test]
    fn fig18_cost_decreases_with_user_ttl() {
        let r = fig18(RunCtx::new(Scale::Smoke), &Registry::disabled());
        let at10 = r.value("unicast_kmkb_uttl10").unwrap();
        let at120 = r.value("unicast_kmkb_uttl120").unwrap();
        assert!(at120 < at10, "rarer visits must cost less: {at120} vs {at10}");
    }
}
