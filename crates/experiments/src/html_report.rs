//! Self-contained HTML run reports.
//!
//! `experiments report` turns the artifacts an instrumented run left under
//! `results/obs/` — per-figure run artifacts, sampled time series, and
//! flight-recorder dumps — into static HTML: one page per figure plus a
//! consolidated index. Everything is hand-rolled (inline CSS, inline SVG,
//! zero external assets or scripts), so a report is a single directory that
//! renders anywhere, including file:// in a sandboxed browser.
//!
//! The pages are derived purely from the on-disk artifacts; generating a
//! report never re-runs a simulation.

use crate::trace_out::FLIGHTREC_SUBDIR;
use cdnc_obs::{bucket_floor, json, Json, SeriesEntry, SeriesSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Everything the report found for one figure id.
#[derive(Debug, Default)]
struct FigureInputs {
    artifact: Option<Json>,
    series: Option<SeriesSnapshot>,
    /// `experiments profile` output for this figure, parsed.
    profile: Option<Json>,
    /// `experiments timeprof` output for this figure, parsed.
    timeprof: Option<Json>,
    /// `<figure>.workload.json` request-plane curves, parsed.
    workload: Option<Json>,
    /// `<figure>.digest.json` determinism audit trail, parsed.
    digest: Option<Json>,
    /// `<figure>.health.json` final run-health heartbeat, parsed.
    health: Option<Json>,
    /// Flight-recorder dumps attributed to this figure, parsed.
    anomalies: Vec<Json>,
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

/// Natural-ish sort key so `fig3` precedes `fig10`.
fn figure_sort_key(id: &str) -> (String, u64, String) {
    let digits_at = id.find(|c: char| c.is_ascii_digit());
    match digits_at {
        Some(at) => {
            let (prefix, rest) = id.split_at(at);
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            let tail = &rest[digits.len()..];
            (prefix.to_owned(), digits.parse().unwrap_or(0), tail.to_owned())
        }
        None => (id.to_owned(), 0, String::new()),
    }
}

/// Scans an artifact directory for per-figure inputs.
fn collect_inputs(obs_dir: &Path) -> io::Result<BTreeMap<String, FigureInputs>> {
    let mut inputs: BTreeMap<String, FigureInputs> = BTreeMap::new();
    let parse_file =
        |path: &Path| -> Option<Json> { json::parse(&std::fs::read_to_string(path).ok()?).ok() };
    for entry in std::fs::read_dir(obs_dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if let Some(id) = name.strip_suffix(".series.json") {
            if let Some(snap) = parse_file(&path).and_then(|d| SeriesSnapshot::from_json(&d)) {
                inputs.entry(id.to_owned()).or_default().series = Some(snap);
            }
        } else if let Some(id) = name.strip_suffix(".profile.json") {
            if let Some(doc) = parse_file(&path) {
                inputs.entry(id.to_owned()).or_default().profile = Some(doc);
            }
        } else if let Some(id) = name.strip_suffix(".timeprof.json") {
            if let Some(doc) = parse_file(&path) {
                inputs.entry(id.to_owned()).or_default().timeprof = Some(doc);
            }
        } else if let Some(id) = name.strip_suffix(".workload.json") {
            if let Some(doc) = parse_file(&path) {
                inputs.entry(id.to_owned()).or_default().workload = Some(doc);
            }
        } else if let Some(id) = name.strip_suffix(".digest.json") {
            if let Some(doc) = parse_file(&path) {
                inputs.entry(id.to_owned()).or_default().digest = Some(doc);
            }
        } else if let Some(id) = name.strip_suffix(".health.json") {
            if let Some(doc) = parse_file(&path) {
                inputs.entry(id.to_owned()).or_default().health = Some(doc);
            }
        } else if let Some(id) = name.strip_suffix(".json") {
            if id == "summary" || id.ends_with(".trace") || id.starts_with("BENCH_") {
                continue;
            }
            if let Some(doc) = parse_file(&path) {
                inputs.entry(id.to_owned()).or_default().artifact = Some(doc);
            }
        }
    }
    let flight_dir = obs_dir.join(FLIGHTREC_SUBDIR);
    if flight_dir.is_dir() {
        let mut dumps: Vec<PathBuf> =
            std::fs::read_dir(&flight_dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
        dumps.sort();
        for path in dumps {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            // Dumps are named `<figure>_<update…>.json`; attribute by the
            // longest figure id that prefixes the stem.
            let Some(stem) = name.strip_suffix(".json") else { continue };
            let owner = inputs
                .keys()
                .filter(|id| stem.starts_with(&format!("{id}_")))
                .max_by_key(|id| id.len())
                .cloned();
            if let (Some(id), Some(doc)) = (owner, parse_file(&path)) {
                inputs.get_mut(&id).expect("owner came from the map").anomalies.push(doc);
            }
        }
    }
    Ok(inputs)
}

const CSS: &str = "body{font:14px/1.45 system-ui,sans-serif;margin:2rem auto;max-width:60rem;\
color:#222;padding:0 1rem}h1,h2{font-weight:600}h2{margin-top:2rem;border-bottom:1px solid #ddd;\
padding-bottom:.2rem}table{border-collapse:collapse;margin:.5rem 0}td,th{border:1px solid #ddd;\
padding:.25rem .6rem;text-align:right}th{background:#f6f6f6}td:first-child,th:first-child\
{text-align:left}svg{display:block;margin:.6rem 0;background:#fcfcfc;border:1px solid #eee}\
.meta{color:#666}.warn{color:#a40}a{color:#06c}";

const SERIES_COLORS: [&str; 4] = ["#0b62a4", "#c0392b", "#1e8449", "#8e44ad"];

/// One series as an inline SVG line chart. Samples restart their sim-time
/// clock at segment boundaries (serial multi-simulation figures), so the
/// polyline splits — and changes colour — wherever the timestamp rewinds.
fn svg_series(entry: &SeriesEntry) -> String {
    const W: f64 = 640.0;
    const H: f64 = 130.0;
    const L: f64 = 64.0; // left gutter for value labels
    const B: f64 = 18.0; // bottom gutter for the time axis
    let pts = &entry.points;
    if pts.is_empty() {
        return String::new();
    }
    let t_max = pts.iter().map(|p| p.t_us).max().unwrap_or(1).max(1) as f64;
    let (mut v_min, mut v_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in pts {
        v_min = v_min.min(p.value);
        v_max = v_max.max(p.value);
    }
    if v_max - v_min < 1e-12 {
        v_max = v_min + 1.0;
    }
    let x = |t_us: u64| L + (t_us as f64 / t_max) * (W - L - 4.0);
    let y = |v: f64| (H - B) - ((v - v_min) / (v_max - v_min)) * (H - B - 6.0);
    let mut segments: Vec<Vec<String>> = vec![Vec::new()];
    let mut prev_t = 0u64;
    for p in pts {
        if p.t_us <= prev_t && !segments.last().unwrap().is_empty() {
            segments.push(Vec::new());
        }
        segments.last_mut().unwrap().push(format!("{:.1},{:.1}", x(p.t_us), y(p.value)));
        prev_t = p.t_us;
    }
    let mut svg = format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\" \
         aria-label=\"{}\">",
        html_escape(&entry.name)
    );
    let _ = write!(
        svg,
        "<text x=\"4\" y=\"12\" font-size=\"11\" fill=\"#666\">{:.3}</text>\
         <text x=\"4\" y=\"{:.0}\" font-size=\"11\" fill=\"#666\">{:.3}</text>\
         <text x=\"{:.0}\" y=\"{:.0}\" font-size=\"11\" fill=\"#666\" text-anchor=\"end\">\
         {:.0} s</text>",
        v_max,
        H - B,
        v_min,
        W - 6.0,
        H - 4.0,
        t_max / 1e6,
    );
    for (i, seg) in segments.iter().enumerate() {
        let color = SERIES_COLORS[i % SERIES_COLORS.len()];
        let _ = write!(
            svg,
            "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"1.2\" points=\"{}\"/>",
            seg.join(" ")
        );
    }
    svg.push_str("</svg>");
    svg
}

/// One `(x, y)` curve (a CDF) as an inline SVG line chart: x spans the
/// data range, y spans `[0, 1]`.
fn svg_curve(label: &str, points: &[(f64, f64)]) -> String {
    const W: f64 = 640.0;
    const H: f64 = 130.0;
    const L: f64 = 64.0; // left gutter for fraction labels
    const B: f64 = 18.0; // bottom gutter for the x axis
    if points.is_empty() {
        return String::new();
    }
    let x_max = points.iter().map(|&(x, _)| x).fold(0.0_f64, f64::max).max(1e-12);
    let x = |v: f64| L + (v / x_max) * (W - L - 4.0);
    let y = |v: f64| (H - B) - v.clamp(0.0, 1.0) * (H - B - 6.0);
    let path: Vec<String> =
        points.iter().map(|&(px, py)| format!("{:.1},{:.1}", x(px), y(py))).collect();
    let mut svg = format!(
        "<svg viewBox=\"0 0 {W} {H}\" width=\"{W}\" height=\"{H}\" role=\"img\" \
         aria-label=\"{}\">",
        html_escape(label)
    );
    let _ = write!(
        svg,
        "<text x=\"4\" y=\"12\" font-size=\"11\" fill=\"#666\">1.0</text>\
         <text x=\"4\" y=\"{:.0}\" font-size=\"11\" fill=\"#666\">0.0</text>\
         <text x=\"{:.0}\" y=\"{:.0}\" font-size=\"11\" fill=\"#666\" text-anchor=\"end\">\
         {:.3} s</text>\
         <polyline fill=\"none\" stroke=\"{}\" stroke-width=\"1.2\" points=\"{}\"/>",
        H - B,
        W - 6.0,
        H - 4.0,
        x_max,
        SERIES_COLORS[0],
        path.join(" ")
    );
    svg.push_str("</svg>");
    svg
}

/// The request-plane section body for one figure: one CDF chart per curve
/// recorded in `<figure>.workload.json` (user-perceived latency and
/// staleness-served per scheme × regime).
fn workload_section(workload: &Json) -> String {
    let Some(Json::Arr(curves)) = workload.get("curves") else { return String::new() };
    let mut body = String::new();
    for curve in curves {
        let Some(name) = curve.get("name").and_then(Json::as_str) else { continue };
        let Some(Json::Arr(raw)) = curve.get("points") else { continue };
        let points: Vec<(f64, f64)> = raw
            .iter()
            .filter_map(|pair| {
                let Json::Arr(xy) = pair else { return None };
                Some((xy.first().and_then(Json::as_f64)?, xy.get(1).and_then(Json::as_f64)?))
            })
            .collect();
        if points.is_empty() {
            continue;
        }
        let _ = write!(body, "<h3>{}</h3>{}", html_escape(name), svg_curve(name, &points));
    }
    body
}

/// Horizontal bar rows as inline SVG: one `(label, value)` per bar.
fn svg_bars(rows: &[(String, f64)], unit: &str) -> String {
    const W: f64 = 640.0;
    const ROW: f64 = 20.0;
    const L: f64 = 230.0;
    if rows.is_empty() {
        return String::new();
    }
    let max = rows.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max).max(1e-12);
    let h = ROW * rows.len() as f64 + 6.0;
    let mut svg = format!("<svg viewBox=\"0 0 {W} {h}\" width=\"{W}\" height=\"{h}\">");
    for (i, (label, value)) in rows.iter().enumerate() {
        let y0 = 4.0 + ROW * i as f64;
        let bw = (value / max) * (W - L - 90.0);
        let _ = write!(
            svg,
            "<text x=\"{:.0}\" y=\"{:.1}\" font-size=\"11\" text-anchor=\"end\">{}</text>\
             <rect x=\"{L}\" y=\"{:.1}\" width=\"{:.1}\" height=\"{:.1}\" fill=\"#0b62a4\"/>\
             <text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" fill=\"#444\">{:.3}{}</text>",
            L - 8.0,
            y0 + ROW - 7.0,
            html_escape(label),
            y0,
            bw.max(0.5),
            ROW - 6.0,
            L + bw.max(0.5) + 6.0,
            y0 + ROW - 7.0,
            value,
            unit,
        );
    }
    svg.push_str("</svg>");
    svg
}

/// The memory-profile section body for one figure: subsystem allocation
/// breakdown (from the tagged allocator) plus the structural probes.
fn profile_section(profile: &Json) -> String {
    let mut body = String::new();
    if let Some(Json::Obj(subsystems)) = profile.get("attribution") {
        let rows: Vec<(String, f64)> = subsystems
            .iter()
            .map(|(name, stats)| {
                let bytes = stats.get("bytes").and_then(Json::as_f64).unwrap_or(0.0);
                (name.clone(), bytes / (1024.0 * 1024.0))
            })
            .collect();
        body.push_str("<h3>Allocated bytes by subsystem</h3>");
        body.push_str(&svg_bars(&rows, " MiB"));
        body.push_str("<table><tr><th>subsystem</th><th>allocations</th><th>bytes</th></tr>");
        for (name, stats) in subsystems {
            let field = |k: &str| stats.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            let _ = write!(
                body,
                "<tr><td>{}</td><td>{:.0}</td><td>{:.0}</td></tr>",
                html_escape(name),
                field("allocs"),
                field("bytes"),
            );
        }
        body.push_str("</table>");
    }
    if let Some(telemetry) = profile.get("allocator_telemetry") {
        let f = |k: &str| telemetry.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        let _ = write!(
            body,
            "<p class=\"meta\">window totals: {:.0} allocations, {:.1} MiB; {:.1}% of tagged \
             bytes attributed to named subsystems</p>",
            f("window_total_allocs"),
            f("window_total_bytes") / (1024.0 * 1024.0),
            100.0 * f("attributed_fraction"),
        );
    }
    if let Some(probes) = profile.get("probes") {
        body.push_str("<h3>Structural probes</h3><ul>");
        for (key, label) in [
            ("queue_depth_at_pop", "event-queue depth at pop"),
            ("node_state_bytes", "per-node state size (bytes)"),
            ("user_state_bytes", "per-user state size (bytes)"),
        ] {
            if let Some(h) = probes.get(key) {
                let f = |k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                let _ = write!(
                    body,
                    "<li>{label}: {:.0} samples, mean {:.1}, max {:.0}</li>",
                    f("count"),
                    f("mean"),
                    f("max"),
                );
            }
        }
        if let Some(peak) =
            probes.get("net").and_then(|n| n.get("inflight_peak_bytes")).and_then(Json::as_f64)
        {
            let _ = write!(body, "<li>peak in-flight network bytes: {:.0}</li>", peak);
        }
        body.push_str("</ul>");
    }
    if let Some(spikes) = profile.get("spikes").and_then(|s| s.get("count")).and_then(Json::as_f64)
    {
        if spikes > 0.0 {
            let _ = write!(
                body,
                "<p class=\"warn\">{spikes:.0} memory spike(s) recorded by the interval probe</p>"
            );
        }
    }
    body
}

/// Flame-graph palette (cycled by frame depth, offset per sibling).
const FLAME_COLORS: [&str; 5] = ["#c0504d", "#d07a3f", "#ddab3b", "#c7803a", "#b85c42"];

/// A `<figure>.timeprof.json` frame-tree telemetry section as an inline
/// SVG flame graph: one row per depth, frame width proportional to total
/// time, children nested inside their parent's span, `<title>` hover text
/// with exact totals. Script-free like every other chart.
fn svg_flamegraph(frames: &[(String, f64, f64)]) -> String {
    const W: f64 = 640.0;
    const ROW: f64 = 19.0;
    if frames.is_empty() {
        return String::new();
    }
    let root_total: f64 =
        frames.iter().filter(|(path, _, _)| !path.contains('/')).map(|(_, t, _)| *t).sum();
    if root_total <= 0.0 {
        return String::new();
    }
    let px = (W - 8.0) / root_total;
    // Frames arrive in first-closed order (children before parents), so
    // lay out shallow-to-deep: parents claim their span first, children
    // pack left-to-right inside it.
    let mut order: Vec<usize> = (0..frames.len()).collect();
    order.sort_by_key(|&i| frames[i].0.matches('/').count());
    let mut spans: BTreeMap<&str, (f64, f64)> = BTreeMap::new(); // path -> (x0, width)
    let mut cursors: BTreeMap<&str, f64> = BTreeMap::new(); // parent path -> next child x
    let mut root_cursor = 4.0;
    let mut depth_max = 0usize;
    let mut svg = String::new();
    for (n, &i) in order.iter().enumerate() {
        let (path, total_ns, self_ns) = &frames[i];
        let depth = path.matches('/').count();
        depth_max = depth_max.max(depth);
        let width = (total_ns * px).max(0.5);
        let x0 = match path.rsplit_once('/') {
            Some((parent, _)) => {
                let Some(&(px0, pw)) = spans.get(parent) else { continue };
                let cursor = cursors.entry(parent).or_insert(px0);
                let x0 = *cursor;
                *cursor = (x0 + width).min(px0 + pw);
                x0
            }
            None => {
                let x0 = root_cursor;
                root_cursor += width;
                x0
            }
        };
        spans.insert(path, (x0, width));
        let y = 3.0 + ROW * depth as f64;
        let label = path.rsplit('/').next().unwrap_or(path);
        let _ = write!(
            svg,
            "<g><rect x=\"{x0:.1}\" y=\"{y:.1}\" width=\"{width:.1}\" height=\"{:.1}\" \
             fill=\"{}\" stroke=\"#fcfcfc\" stroke-width=\"0.5\">\
             <title>{} — total {:.4} s, self {:.4} s</title></rect>",
            ROW - 3.0,
            FLAME_COLORS[(depth + n) % FLAME_COLORS.len()],
            html_escape(path),
            total_ns / 1e9,
            self_ns / 1e9,
        );
        if width >= 50.0 {
            let _ = write!(
                svg,
                "<text x=\"{:.1}\" y=\"{:.1}\" font-size=\"11\" fill=\"#fff\">{}</text>",
                x0 + 4.0,
                y + ROW - 7.0,
                html_escape(&label.chars().take((width / 7.0) as usize).collect::<String>()),
            );
        }
        svg.push_str("</g>");
    }
    let h = ROW * (depth_max + 1) as f64 + 6.0;
    format!(
        "<svg viewBox=\"0 0 {W} {h}\" width=\"{W}\" height=\"{h}\" role=\"img\" \
         aria-label=\"flame graph\">{svg}</svg>"
    )
}

/// The time-profile section body for one figure: flame graph over the
/// span-frame tree, per-kind dispatch-handler costs, and per-worker
/// utilization.
fn timeprof_section(timeprof: &Json) -> String {
    let telemetry = timeprof.get("time_telemetry");
    let mut body = String::new();
    let frames: Vec<(String, f64, f64)> = match telemetry.and_then(|t| t.get("frames")) {
        Some(Json::Arr(items)) => items
            .iter()
            .filter_map(|f| {
                Some((
                    f.get("path").and_then(Json::as_str)?.to_owned(),
                    f.get("total_ns").and_then(Json::as_f64)?,
                    f.get("self_ns").and_then(Json::as_f64)?,
                ))
            })
            .collect(),
        _ => Vec::new(),
    };
    if !frames.is_empty() {
        body.push_str("<h3>Flame graph</h3>");
        body.push_str(
            "<p class=\"meta\">frame width ∝ total wall time; hover a frame for exact \
             totals</p>",
        );
        body.push_str(&svg_flamegraph(&frames));
    }
    if let Some(Json::Obj(handlers)) = telemetry.and_then(|t| t.get("handlers")) {
        if !handlers.is_empty() {
            body.push_str(
                "<h3>Dispatch handlers</h3><table><tr><th>handler</th><th>count</th>\
                 <th>mean ns</th><th>total ms</th></tr>",
            );
            for (label, h) in handlers {
                let f = |k: &str| h.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                let _ = write!(
                    body,
                    "<tr><td>{}</td><td>{:.0}</td><td>{:.0}</td><td>{:.3}</td></tr>",
                    html_escape(label),
                    f("count"),
                    1e9 * f("mean_s"),
                    1e3 * f("sum_s"),
                );
            }
            body.push_str("</table>");
        }
    }
    if let Some(Json::Arr(workers)) = telemetry.and_then(|t| t.get("workers")) {
        if !workers.is_empty() {
            let rows: Vec<(String, f64)> = workers
                .iter()
                .filter_map(|w| {
                    let id = w.get("worker").and_then(Json::as_f64)?;
                    let busy = w.get("busy_ns").and_then(Json::as_f64)?;
                    Some((format!("worker {id:.0} busy"), busy / 1e6))
                })
                .collect();
            body.push_str("<h3>Worker utilization</h3>");
            body.push_str(&svg_bars(&rows, " ms"));
            body.push_str(
                "<table><tr><th>worker</th><th>busy ms</th><th>steal ms</th><th>idle ms</th>\
                 <th>join ms</th><th>chunks</th><th>tasks</th></tr>",
            );
            for w in workers {
                let f = |k: &str| w.get(k).and_then(Json::as_f64).unwrap_or(0.0);
                let _ = write!(
                    body,
                    "<tr><td>{:.0}</td><td>{:.3}</td><td>{:.3}</td><td>{:.3}</td>\
                     <td>{:.3}</td><td>{:.0}</td><td>{:.0}</td></tr>",
                    f("worker"),
                    f("busy_ns") / 1e6,
                    f("steal_ns") / 1e6,
                    f("idle_ns") / 1e6,
                    f("join_wait_ns") / 1e6,
                    f("chunks"),
                    f("tasks"),
                );
            }
            body.push_str("</table>");
        }
    }
    body
}

/// The scheduler-pressure section from an artifact's metrics: the
/// queue-depth high-water mark (always recorded) and the pop-depth
/// histogram (present when the profiling gate armed it).
fn scheduler_section(artifact: &Json) -> String {
    let metrics = artifact.get("metrics");
    let hwm = metrics
        .and_then(|m| m.get("gauges"))
        .and_then(|g| g.get("sched_queue_depth"))
        .and_then(|g| g.get("high_water"))
        .and_then(Json::as_f64);
    let pop =
        metrics.and_then(|m| m.get("histograms")).and_then(|h| h.get("sched_queue_depth_at_pop"));
    if hwm.is_none() && pop.is_none() {
        return String::new();
    }
    let mut body = String::from("<h2>Scheduler pressure</h2><ul>");
    if let Some(hwm) = hwm {
        let _ = write!(body, "<li>event-queue depth high-water mark: {hwm:.0}</li>");
    }
    if let Some(pop) = pop {
        let f = |k: &str| pop.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        let _ = write!(
            body,
            "<li>queue depth at pop: {:.0} samples, mean {:.1}, p99 {:.1}, max {:.0}</li>",
            f("count"),
            f("mean"),
            f("p99"),
            f("max"),
        );
    }
    body.push_str("</ul>");
    body
}

/// The adoption-lag histograms of an artifact as `(label, rows)` charts:
/// one chart per `sim_adopt_lag_s_*` histogram with samples, one bar per
/// occupied log-scale bucket.
fn adopt_lag_charts(artifact: &Json) -> Vec<(String, String)> {
    let Some(Json::Obj(hists)) = artifact.get("metrics").and_then(|m| m.get("histograms")) else {
        return Vec::new();
    };
    let mut charts = Vec::new();
    for (name, h) in hists {
        let Some(method) = name.strip_prefix("sim_adopt_lag_s_") else { continue };
        let Some(Json::Arr(buckets)) = h.get("buckets") else { continue };
        let rows: Vec<(String, f64)> = buckets
            .iter()
            .filter_map(|pair| {
                let Json::Arr(iv) = pair else { return None };
                let i = iv.first().and_then(Json::as_f64)? as usize;
                let count = iv.get(1).and_then(Json::as_f64)?;
                Some((format!("≥ {:.3e} s", bucket_floor(i)), count))
            })
            .collect();
        if rows.is_empty() {
            continue;
        }
        let p99 = h.get("p99").and_then(Json::as_f64).unwrap_or(0.0);
        let count = h.get("count").and_then(Json::as_f64).unwrap_or(0.0);
        let title = format!("{method} — {count:.0} adoptions, p99 {p99:.2} s");
        charts.push((title, svg_bars(&rows, "")));
    }
    charts
}

/// Phase-timing bars from an artifact's `phases` array.
fn phase_chart(artifact: &Json) -> String {
    let Some(Json::Arr(phases)) = artifact.get("phases") else { return String::new() };
    let rows: Vec<(String, f64)> = phases
        .iter()
        .filter_map(|p| {
            let name = p.get("phase").and_then(Json::as_str)?;
            let total = p.get("total_s").and_then(Json::as_f64)?;
            Some((name.to_owned(), total))
        })
        .collect();
    svg_bars(&rows, " s")
}

/// The determinism-audit and run-health section body: the run-level chain
/// digest with its segment breakdown (from `<figure>.digest.json`) and the
/// final heartbeat (from `<figure>.health.json`), with a warning when the
/// run recorded stalls or never finished.
fn digest_health_section(digest: Option<&Json>, health: Option<&Json>) -> String {
    let mut body = String::new();
    if let Some(digest) = digest {
        let chain = digest.get("chain").and_then(Json::as_str).unwrap_or("?");
        let events = digest.get("events").and_then(Json::as_f64).unwrap_or(0.0);
        let every = digest.get("checkpoint_every").and_then(Json::as_f64).unwrap_or(0.0);
        let segments = match digest.get("segments") {
            Some(Json::Arr(items)) => items.len(),
            _ => 0,
        };
        let _ = write!(
            body,
            "<p>chain digest <code>{}</code> over {events:.0} event(s) in {segments} \
             segment(s), checkpoint every {every:.0}</p>",
            html_escape(chain)
        );
        if let Some(perturb) = digest.get("perturb").and_then(Json::as_f64) {
            let _ = write!(
                body,
                "<p class=\"warn\">perturbation injected at event index {perturb:.0} — this \
                 run's chain is intentionally divergent</p>"
            );
        }
    }
    if let Some(health) = health {
        let f = |k: &str| health.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        let finished = matches!(health.get("finished"), Some(Json::Bool(true)));
        let _ = write!(
            body,
            "<p>final heartbeat: {:.1} s wall, {:.0} events ({:.0}/s mean), {:.0}/{:.0} \
             simulation(s) done, {:.0} MiB resident</p>",
            f("wall_s"),
            f("events"),
            f("events_per_s"),
            f("sims_done"),
            f("sims_total"),
            f("vm_rss_kb") / 1024.0,
        );
        let stalls = f("stalls");
        if stalls > 0.0 {
            let _ =
                write!(body, "<p class=\"warn\">{stalls:.0} stall(s) flagged by the watchdog</p>");
        }
        if !finished {
            body.push_str("<p class=\"warn\">run never wrote a final heartbeat (still running, or killed)</p>");
        }
    }
    body
}

fn keyval_table(artifact: &Json) -> String {
    let Some(Json::Obj(keyvals)) = artifact.get("summary").and_then(|s| s.get("keyvals")) else {
        return String::new();
    };
    let mut out = String::from("<table><tr><th>metric</th><th>value</th></tr>");
    for (name, value) in keyvals {
        let _ = write!(
            out,
            "<tr><td>{}</td><td>{}</td></tr>",
            html_escape(name),
            html_escape(&value.to_compact())
        );
    }
    out.push_str("</table>");
    out
}

fn anomaly_list(anomalies: &[Json]) -> String {
    let mut out = String::from("<ul>");
    for a in anomalies {
        let update = a.get("update").and_then(Json::as_f64).unwrap_or(-1.0);
        let scope = a.get("scope").and_then(Json::as_str).unwrap_or("?");
        let lag = a.get("max_adopt_lag_s").and_then(Json::as_f64).unwrap_or(0.0);
        let kinds: Vec<String> = match a.get("anomalies") {
            Some(Json::Arr(items)) => items
                .iter()
                .filter_map(|i| i.get("kind").and_then(Json::as_str).map(str::to_owned))
                .collect(),
            _ => Vec::new(),
        };
        let _ = write!(
            out,
            "<li class=\"warn\">update {update:.0} ({}) — max adoption lag {lag:.2} s \
             [{}]</li>",
            html_escape(scope),
            html_escape(&kinds.join(", "))
        );
    }
    out.push_str("</ul>");
    out
}

fn page(title: &str, body: &str) -> String {
    format!(
        "<!doctype html><html><head><meta charset=\"utf-8\">\
         <title>{}</title><style>{CSS}</style></head><body>{body}</body></html>",
        html_escape(title)
    )
}

/// Renders one figure's page body.
fn figure_page(id: &str, inputs: &FigureInputs) -> String {
    let mut body = String::new();
    let title = inputs
        .artifact
        .as_ref()
        .and_then(|a| a.get("summary"))
        .and_then(|s| s.get("title"))
        .and_then(Json::as_str)
        .unwrap_or("");
    let _ = write!(body, "<h1>{} <small>{}</small></h1>", html_escape(id), html_escape(title));
    if let Some(artifact) = &inputs.artifact {
        let meta = |k: &str| artifact.get(k).map(|v| v.to_compact()).unwrap_or_default();
        let _ = write!(
            body,
            "<p class=\"meta\">seed {} · config {} · scale {}</p>",
            html_escape(&meta("seed")),
            html_escape(&meta("config_digest")),
            html_escape(
                &artifact
                    .get("summary")
                    .and_then(|s| s.get("scale"))
                    .map(|v| v.to_compact())
                    .unwrap_or_default()
            ),
        );
        body.push_str("<h2>Headline numbers</h2>");
        body.push_str(&keyval_table(artifact));
    }
    if let Some(series) = &inputs.series {
        let _ = write!(
            body,
            "<h2>Time series</h2><p class=\"meta\">{} samples, cadence {:.3} s (simulated \
             time; colour changes mark simulation segments)</p>",
            series.total_points,
            series.cadence_us as f64 / 1e6
        );
        for entry in &series.series {
            if entry.points.is_empty() {
                continue;
            }
            let _ = write!(
                body,
                "<h3>{} <small class=\"meta\">({})</small></h3>{}",
                html_escape(&entry.name),
                entry.kind.name(),
                svg_series(entry)
            );
        }
    }
    if let Some(artifact) = &inputs.artifact {
        let charts = adopt_lag_charts(artifact);
        if !charts.is_empty() {
            body.push_str("<h2>Adoption-lag histograms</h2>");
            for (title, chart) in charts {
                let _ = write!(body, "<h3>{}</h3>{chart}", html_escape(&title));
            }
        }
        let phases = phase_chart(artifact);
        if !phases.is_empty() {
            body.push_str("<h2>Phase timings</h2>");
            body.push_str(&phases);
        }
        body.push_str(&scheduler_section(artifact));
    }
    if let Some(workload) = &inputs.workload {
        let section = workload_section(workload);
        if !section.is_empty() {
            body.push_str(
                "<h2>Request plane</h2><p class=\"meta\">user-perceived latency and \
                 staleness-served distributions per scheme × catalog regime</p>",
            );
            body.push_str(&section);
        }
    }
    if let Some(profile) = &inputs.profile {
        body.push_str("<h2>Memory profile</h2>");
        body.push_str(&profile_section(profile));
    }
    if let Some(timeprof) = &inputs.timeprof {
        body.push_str("<h2>Time profile</h2>");
        body.push_str(&timeprof_section(timeprof));
    }
    if inputs.digest.is_some() || inputs.health.is_some() {
        body.push_str("<h2>Determinism &amp; run health</h2>");
        body.push_str(&digest_health_section(inputs.digest.as_ref(), inputs.health.as_ref()));
    }
    body.push_str("<h2>Flight recorder</h2>");
    if inputs.anomalies.is_empty() {
        body.push_str("<p class=\"meta\">no anomalous updates recorded</p>");
    } else {
        body.push_str(&anomaly_list(&inputs.anomalies));
    }
    body.push_str("<p><a href=\"index.html\">← all figures</a></p>");
    body
}

/// Renders the consolidated index page body.
fn index_page(obs_dir: &Path, ids: &[String], inputs: &BTreeMap<String, FigureInputs>) -> String {
    let mut body = String::from("<h1>Run report</h1>");
    let _ = write!(
        body,
        "<p class=\"meta\">generated from <code>{}</code></p>",
        html_escape(&obs_dir.display().to_string())
    );
    if let Ok(text) = std::fs::read_to_string(obs_dir.join("summary.json")) {
        if let Ok(summary) = json::parse(&text) {
            let f = |k: &str| summary.get(k).and_then(Json::as_f64).unwrap_or(0.0);
            let _ = write!(
                body,
                "<p>consolidated run: {:.1} s wall, {:.0} simulator events</p>",
                f("total_wall_s"),
                f("total_events")
            );
        }
    }
    body.push_str(
        "<table><tr><th>figure</th><th>title</th><th>series</th><th>samples</th>\
         <th>anomalies</th></tr>",
    );
    for id in ids {
        let figure = &inputs[id];
        let title = figure
            .artifact
            .as_ref()
            .and_then(|a| a.get("summary"))
            .and_then(|s| s.get("title"))
            .and_then(Json::as_str)
            .unwrap_or("");
        let (n_series, n_samples) =
            figure.series.as_ref().map_or((0, 0), |s| (s.series.len(), s.total_points as usize));
        let _ = write!(
            body,
            "<tr><td><a href=\"{id}.html\">{id}</a></td><td>{}</td><td>{n_series}</td>\
             <td>{n_samples}</td><td>{}</td></tr>",
            html_escape(title),
            figure.anomalies.len()
        );
    }
    body.push_str("</table>");
    body
}

/// Generates the report: `<out_dir>/<figure>.html` for every figure that
/// left artifacts under `obs_dir`, plus `<out_dir>/index.html`. Returns the
/// written paths, index first. Errors when `obs_dir` holds nothing to
/// report on.
pub fn generate_report(obs_dir: &Path, out_dir: &Path) -> io::Result<Vec<PathBuf>> {
    let inputs = collect_inputs(obs_dir)?;
    if inputs.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no run artifacts under {} — run a figure with --obs first", obs_dir.display()),
        ));
    }
    std::fs::create_dir_all(out_dir)?;
    let mut ids: Vec<String> = inputs.keys().cloned().collect();
    ids.sort_by_key(|id| figure_sort_key(id));
    let mut written = Vec::new();
    let index = out_dir.join("index.html");
    std::fs::write(
        &index,
        page("CDN consistency — run report", &index_page(obs_dir, &ids, &inputs)),
    )?;
    written.push(index);
    for id in &ids {
        let path = out_dir.join(format!("{id}.html"));
        std::fs::write(&path, page(id, &figure_page(id, &inputs[id])))?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_obs::{SeriesKind, SeriesPoint};

    fn entry(points: Vec<SeriesPoint>) -> SeriesEntry {
        SeriesEntry { name: "sched_queue_depth".to_owned(), kind: SeriesKind::Gauge, points }
    }

    #[test]
    fn series_chart_splits_segments_on_time_rewind() {
        let svg = svg_series(&entry(vec![
            SeriesPoint { t_us: 1, value: 1.0 },
            SeriesPoint { t_us: 2, value: 2.0 },
            SeriesPoint { t_us: 1, value: 3.0 }, // clock rewound: new segment
            SeriesPoint { t_us: 2, value: 4.0 },
        ]));
        assert_eq!(svg.matches("<polyline").count(), 2, "rewind must split the polyline");
        assert!(svg.contains(SERIES_COLORS[0]) && svg.contains(SERIES_COLORS[1]));
    }

    #[test]
    fn escaping_covers_markup_characters() {
        assert_eq!(html_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }

    #[test]
    fn figures_sort_numerically() {
        let mut ids = vec!["fig10".to_owned(), "fig3".to_owned(), "ext_policy".to_owned()];
        ids.sort_by_key(|id| figure_sort_key(id));
        assert_eq!(ids, ["ext_policy", "fig3", "fig10"]);
    }

    #[test]
    fn report_generates_from_artifacts_on_disk() {
        let base = std::env::temp_dir().join(format!("cdnc-report-{}", std::process::id()));
        let obs = base.join("obs");
        let out = base.join("report");
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(obs.join(FLIGHTREC_SUBDIR)).unwrap();
        let artifact = Json::obj()
            .field("run_id", "fig20")
            .field("seed", 7u64)
            .field("config_digest", "abc")
            .field(
                "summary",
                Json::obj()
                    .field("title", "Fig 20 <demo>")
                    .field("scale", "Smoke")
                    .field("keyvals", Json::obj().field("mean_lag_s", 1.5)),
            )
            .field(
                "metrics",
                Json::obj().field(
                    "histograms",
                    Json::obj().field(
                        "sim_adopt_lag_s_push",
                        Json::obj().field("count", 4u64).field("p99", 2.0).field(
                            "buckets",
                            Json::Arr(vec![Json::Arr(vec![Json::from(30u64), Json::from(4u64)])]),
                        ),
                    ),
                ),
            )
            .field(
                "phases",
                Json::Arr(vec![Json::obj()
                    .field("phase", "fig20")
                    .field("count", 1u64)
                    .field("total_s", 0.5)]),
            );
        std::fs::write(obs.join("fig20.json"), artifact.to_pretty()).unwrap();
        let series = Json::obj().field("cadence_us", 1000u64).field("total_points", 2u64).field(
            "series",
            Json::Arr(vec![Json::obj()
                .field("name", "sched_queue_depth")
                .field("kind", "gauge")
                .field(
                    "points",
                    Json::Arr(vec![
                        Json::Arr(vec![Json::from(1000u64), Json::from(2.0)]),
                        Json::Arr(vec![Json::from(2000u64), Json::from(1.0)]),
                    ]),
                )]),
        );
        std::fs::write(obs.join("fig20.series.json"), series.to_pretty()).unwrap();
        let dump = Json::obj()
            .field("update", 3u64)
            .field("scope", "push")
            .field("max_adopt_lag_s", 99.0)
            .field("anomalies", Json::Arr(vec![Json::obj().field("kind", "slow_adoption")]));
        std::fs::write(obs.join(FLIGHTREC_SUBDIR).join("fig20_u3.json"), dump.to_pretty()).unwrap();
        let profile = Json::obj()
            .field(
                "attribution",
                Json::obj()
                    .field("scheduler", Json::obj().field("allocs", 10u64).field("bytes", 4096u64)),
            )
            .field(
                "allocator_telemetry",
                Json::obj()
                    .field("window_total_allocs", 12u64)
                    .field("window_total_bytes", 5000u64)
                    .field("attributed_fraction", 0.95),
            )
            .field(
                "probes",
                Json::obj()
                    .field(
                        "queue_depth_at_pop",
                        Json::obj().field("count", 5u64).field("mean", 2.0).field("max", 4.0),
                    )
                    .field("net", Json::obj().field("inflight_peak_bytes", 2048u64)),
            )
            .field("spikes", Json::obj().field("count", 1u64));
        std::fs::write(obs.join("fig20.profile.json"), profile.to_pretty()).unwrap();
        let frame = |path: &str, total: f64, self_ns: f64| {
            Json::obj().field("path", path).field("total_ns", total).field("self_ns", self_ns)
        };
        let timeprof = Json::obj().field(
            "time_telemetry",
            Json::obj()
                .field(
                    "frames",
                    Json::Arr(vec![frame("fig20/sim_events", 7e8, 7e8), frame("fig20", 1e9, 3e8)]),
                )
                .field(
                    "handlers",
                    Json::obj().field(
                        "ev_publish",
                        Json::obj()
                            .field("count", 42u64)
                            .field("mean_s", 1e-6)
                            .field("sum_s", 4.2e-5),
                    ),
                )
                .field(
                    "workers",
                    Json::Arr(vec![Json::obj()
                        .field("worker", 0u64)
                        .field("busy_ns", 9e8)
                        .field("steal_ns", 1e6)
                        .field("idle_ns", 2e6)
                        .field("join_wait_ns", 0.0)
                        .field("chunks", 3u64)
                        .field("tasks", 12u64)]),
                ),
        );
        std::fs::write(obs.join("fig20.timeprof.json"), timeprof.to_pretty()).unwrap();
        let workload = Json::obj().field("figure", "fig20").field(
            "curves",
            Json::Arr(vec![Json::obj().field("name", "Push_base_latency_cdf").field(
                "points",
                Json::Arr(vec![
                    Json::Arr(vec![Json::from(0.0), Json::from(0.5)]),
                    Json::Arr(vec![Json::from(0.2), Json::from(1.0)]),
                ]),
            )]),
        );
        std::fs::write(obs.join("fig20.workload.json"), workload.to_pretty()).unwrap();
        let digest = Json::obj()
            .field("figure", "fig20")
            .field("scale", "smoke")
            .field("checkpoint_every", 4096u64)
            .field("perturb", Json::Null)
            .field("events", 1234u64)
            .field("chain", "0x1234abcd5678ef90")
            .field("segments", Json::Arr(vec![Json::obj().field("events", 1234u64)]));
        std::fs::write(obs.join("fig20.digest.json"), digest.to_pretty()).unwrap();
        let health = Json::obj()
            .field("figure", "fig20")
            .field("wall_s", 2.5)
            .field("events", 1234u64)
            .field("events_per_s", 493.6)
            .field("sims_done", 4u64)
            .field("sims_total", 4u64)
            .field("vm_rss_kb", 2048u64)
            .field("stalls", 1u64)
            .field("finished", true);
        std::fs::write(obs.join("fig20.health.json"), health.to_pretty()).unwrap();

        let written = generate_report(&obs, &out).unwrap();
        assert_eq!(written.len(), 2, "index + one figure page");
        let index = std::fs::read_to_string(&written[0]).unwrap();
        assert!(index.contains("fig20.html"));
        let fig = std::fs::read_to_string(&written[1]).unwrap();
        assert!(fig.contains("Fig 20 &lt;demo&gt;"), "titles are escaped");
        assert!(fig.contains("<polyline"), "series chart rendered");
        assert!(fig.contains("sim_adopt_lag_s_push") || fig.contains("push — 4 adoptions"));
        assert!(fig.contains("slow_adoption"), "anomaly listed");
        assert!(fig.contains("Memory profile"), "profile section rendered");
        assert!(fig.contains("event-queue depth at pop"), "probe summary rendered");
        assert!(fig.contains("memory spike(s)"), "spike warning rendered");
        assert!(fig.contains("Time profile"), "timeprof section rendered");
        assert!(fig.contains("Flame graph"), "flame graph rendered");
        assert!(fig.contains("total 1.0000 s"), "root frame hover title rendered");
        assert!(fig.contains("ev_publish"), "handler table rendered");
        assert!(fig.contains("Worker utilization"), "worker section rendered");
        assert!(fig.contains("Request plane"), "request-plane section rendered");
        assert!(fig.contains("Push_base_latency_cdf"), "workload CDF chart titled");
        assert!(fig.contains("Determinism &amp; run health"), "digest/health section rendered");
        assert!(fig.contains("0x1234abcd5678ef90"), "chain digest rendered");
        assert!(fig.contains("1 stall(s)"), "stall warning rendered");
        assert!(
            !index.contains("fig20.digest") && !index.contains("fig20.health"),
            "digest/health files must not register as separate figures"
        );
        assert!(!fig.contains("<script"), "report stays script-free");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn flamegraph_nests_children_inside_parents() {
        let frames = vec![
            ("run/step".to_owned(), 4e8, 4e8),
            ("run/other".to_owned(), 2e8, 2e8),
            ("run".to_owned(), 1e9, 4e8),
        ];
        let svg = svg_flamegraph(&frames);
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains("run/step — total 0.4000 s"), "{svg}");
        // The parent spans the full root width; both children start at the
        // parent's left edge or to its right, never past its span.
        assert!(!svg.contains("<script"));
        assert!(svg_flamegraph(&[]).is_empty());
    }

    #[test]
    fn workload_section_skips_malformed_curves() {
        let doc = Json::obj().field(
            "curves",
            Json::Arr(vec![
                Json::obj().field("name", "ok").field(
                    "points",
                    Json::Arr(vec![Json::Arr(vec![Json::from(0.0), Json::from(1.0)])]),
                ),
                Json::obj().field("name", "empty").field("points", Json::Arr(vec![])),
                Json::obj().field("points", Json::Arr(vec![])), // nameless
            ]),
        );
        let body = workload_section(&doc);
        assert_eq!(body.matches("<svg").count(), 1, "{body}");
        assert!(body.contains("<h3>ok</h3>"));
        assert!(!body.contains("empty"));
        assert!(workload_section(&Json::obj()).is_empty());
    }

    #[test]
    fn scheduler_section_reads_gauge_and_histogram() {
        let artifact = Json::obj().field(
            "metrics",
            Json::obj()
                .field(
                    "gauges",
                    Json::obj().field(
                        "sched_queue_depth",
                        Json::obj().field("value", 0u64).field("high_water", 523u64),
                    ),
                )
                .field(
                    "histograms",
                    Json::obj().field(
                        "sched_queue_depth_at_pop",
                        Json::obj()
                            .field("count", 100u64)
                            .field("mean", 12.5)
                            .field("p99", 40.0)
                            .field("max", 523.0),
                    ),
                ),
        );
        let body = scheduler_section(&artifact);
        assert!(body.contains("high-water mark: 523"), "{body}");
        assert!(body.contains("100 samples"), "{body}");
        assert!(scheduler_section(&Json::obj()).is_empty());
    }

    #[test]
    fn empty_obs_dir_is_an_error() {
        let base = std::env::temp_dir().join(format!("cdnc-report-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        assert!(generate_report(&base, &base.join("out")).is_err());
        let _ = std::fs::remove_dir_all(&base);
    }
}
