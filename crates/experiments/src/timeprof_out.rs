//! Time-profile artifact output for `experiments timeprof`: one
//! `<figure>.timeprof.json` plus one `<figure>.folded` (collapsed-stack
//! flamegraph input) per run, attributing the run's wall clock to the
//! span-frame tree, per-kind dispatch handlers, and pool workers.
//!
//! The document mirrors the deterministic/volatile split of
//! [`crate::profile_out`]. The `frames` section (paths, first-closed
//! order, entry counts) and the `handlers` section (dispatch counts per
//! kind) come from registry instruments sharded and absorbed in task
//! order, so they are bit-identical for every `--jobs N`. Everything
//! measured in nanoseconds — frame totals and self times, handler
//! latency moments, worker busy/steal/idle accounting — sits under the
//! single `time_telemetry` key listed in
//! [`crate::obs_out::VOLATILE_KEYS`], so `obs-diff` ignores it. The
//! `.folded` sibling carries volatile self-nanosecond values over a
//! deterministic set of stack lines; `obs-diff` compares its paths only.

use crate::scale::Scale;
use cdnc_obs::{HistogramSnapshot, Json, Registry, TimeProfSnapshot, WorkerUse};
use std::io;
use std::path::{Path, PathBuf};

/// Bridges the pool's dependency-free worker accounting into the
/// registry's [`WorkerUse`] records (field-for-field; `cdnc-par` cannot
/// depend on `cdnc-obs`, so the caller carries the stats across).
pub fn worker_use(stats: &[cdnc_par::WorkerStat]) -> Vec<WorkerUse> {
    stats
        .iter()
        .map(|s| WorkerUse {
            worker: s.worker,
            busy_ns: s.busy_ns,
            steal_ns: s.steal_ns,
            idle_ns: s.idle_ns,
            join_wait_ns: s.join_wait_ns,
            chunks: s.chunks,
            tasks: s.tasks,
        })
        .collect()
}

/// A handler histogram as a compact JSON object of its volatile latency
/// moments (seconds).
fn handler_telemetry_doc(h: &HistogramSnapshot) -> Json {
    let mean = if h.count > 0 { h.sum / h.count as f64 } else { 0.0 };
    Json::obj()
        .field("count", h.count)
        .field("sum_s", h.sum)
        .field("mean_s", mean)
        .field("min_s", if h.count > 0 { h.min } else { 0.0 })
        .field("max_s", if h.count > 0 { h.max } else { 0.0 })
}

/// The full time-profile document for one figure run.
pub fn timeprof_doc(id: &str, scale: Scale, snap: &TimeProfSnapshot, wall_s: f64) -> Json {
    let frames = Json::Arr(
        snap.frames
            .iter()
            .map(|(path, t)| Json::obj().field("path", path.as_str()).field("count", t.count))
            .collect(),
    );
    let mut handlers = Json::obj();
    for (label, h) in &snap.handlers {
        handlers = handlers.field(label, Json::obj().field("count", h.count));
    }

    let frame_telemetry = Json::Arr(
        snap.frames
            .iter()
            .map(|(path, t)| {
                Json::obj()
                    .field("path", path.as_str())
                    .field("total_ns", t.total_ns as f64)
                    .field("self_ns", t.self_ns as f64)
            })
            .collect(),
    );
    let mut handler_telemetry = Json::obj();
    for (label, h) in &snap.handlers {
        handler_telemetry = handler_telemetry.field(label, handler_telemetry_doc(h));
    }
    let workers = Json::Arr(
        snap.workers
            .iter()
            .map(|w| {
                Json::obj()
                    .field("worker", w.worker as u64)
                    .field("busy_ns", w.busy_ns as f64)
                    .field("steal_ns", w.steal_ns as f64)
                    .field("idle_ns", w.idle_ns as f64)
                    .field("join_wait_ns", w.join_wait_ns as f64)
                    .field("chunks", w.chunks)
                    .field("tasks", w.tasks)
            })
            .collect(),
    );

    Json::obj()
        .field("figure", id)
        .field("scale", format!("{scale:?}"))
        .field("wall_s", wall_s)
        .field("frames", frames)
        .field("handlers", handlers)
        .field(
            "time_telemetry",
            Json::obj()
                .field("frames", frame_telemetry)
                .field("handlers", handler_telemetry)
                .field("workers", workers),
        )
}

/// Writes `<dir>/<figure-id>.timeprof.json` and `<dir>/<figure-id>.folded`.
/// Returns both artifact paths (JSON first).
pub fn write_timeprof_artifact(
    dir: &Path,
    id: &str,
    scale: Scale,
    reg: &Registry,
    wall_s: f64,
) -> io::Result<(PathBuf, PathBuf)> {
    let snap = reg.timeprof_snapshot().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "registry has no time profile armed")
    })?;
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(format!("{id}.timeprof.json"));
    std::fs::write(&json_path, timeprof_doc(id, scale, &snap, wall_s).to_pretty())?;
    let folded_path = dir.join(format!("{id}.folded"));
    std::fs::write(&folded_path, cdnc_obs::to_folded(&snap.frames))?;
    Ok((json_path, folded_path))
}

/// Formats the frame / handler / worker breakdown printed after
/// `experiments timeprof`.
pub fn timeprof_table(snap: &TimeProfSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<36}  {:>10}  {:>10}  {:>10}  {:>6}\n",
        "frame", "count", "total s", "self s", "self%"
    ));
    let wall: f64 = snap
        .frames
        .iter()
        .filter(|(path, _)| !path.contains('/'))
        .map(|(_, t)| t.total_secs())
        .sum();
    for (path, t) in &snap.frames {
        let share = if wall > 0.0 { 100.0 * t.self_secs() / wall } else { 0.0 };
        out.push_str(&format!(
            "  {:<36}  {:>10}  {:>10.4}  {:>10.4}  {:>5.1}%\n",
            path,
            t.count,
            t.total_secs(),
            t.self_secs(),
            share,
        ));
    }
    if !snap.handlers.is_empty() {
        out.push_str(&format!(
            "\n  {:<24}  {:>12}  {:>12}  {:>12}\n",
            "handler", "count", "mean ns", "total ms"
        ));
        for (label, h) in &snap.handlers {
            let mean_ns = if h.count > 0 { 1e9 * h.sum / h.count as f64 } else { 0.0 };
            out.push_str(&format!(
                "  {:<24}  {:>12}  {:>12.0}  {:>12.3}\n",
                label,
                h.count,
                mean_ns,
                1e3 * h.sum,
            ));
        }
    }
    if !snap.workers.is_empty() {
        out.push_str(&format!(
            "\n  {:<8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>8}  {:>8}\n",
            "worker", "busy ms", "steal ms", "idle ms", "join ms", "chunks", "tasks"
        ));
        let ms = |ns: u128| ns as f64 / 1e6;
        for w in &snap.workers {
            out.push_str(&format!(
                "  {:<8}  {:>10.3}  {:>10.3}  {:>10.3}  {:>10.3}  {:>8}  {:>8}\n",
                w.worker,
                ms(w.busy_ns),
                ms(w.steal_ns),
                ms(w.idle_ns),
                ms(w.join_wait_ns),
                w.chunks,
                w.tasks,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_registry() -> Registry {
        let reg = Registry::enabled();
        reg.enable_timeprof();
        {
            let _outer = reg.span("run");
            let _inner = reg.span("step");
            let _t = reg.handler_timer("ev_publish").start();
        }
        reg.record_worker_use(&worker_use(&[cdnc_par::WorkerStat {
            worker: 0,
            busy_ns: 900,
            steal_ns: 50,
            idle_ns: 25,
            join_wait_ns: 0,
            chunks: 3,
            tasks: 17,
        }]));
        reg
    }

    #[test]
    fn doc_splits_structure_from_telemetry() {
        let reg = synthetic_registry();
        let snap = reg.timeprof_snapshot().expect("armed");
        let doc = timeprof_doc("figX", Scale::Smoke, &snap, 1.5);
        let Some(Json::Arr(frames)) = doc.get("frames") else { panic!("frames section") };
        let paths: Vec<_> =
            frames.iter().filter_map(|f| f.get("path")).filter_map(Json::as_str).collect();
        assert_eq!(paths, ["run/step", "run"], "first-closed order");
        assert!(frames[0].get("self_ns").is_none(), "nanoseconds live only under time_telemetry");
        assert_eq!(
            doc.get("handlers")
                .and_then(|h| h.get("ev_publish"))
                .and_then(|h| h.get("count"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        let telemetry = doc.get("time_telemetry").expect("telemetry section");
        let Some(Json::Arr(tele_frames)) = telemetry.get("frames") else { panic!("tele frames") };
        assert!(tele_frames[0].get("self_ns").is_some());
        let Some(Json::Arr(workers)) = telemetry.get("workers") else { panic!("workers") };
        assert_eq!(workers[0].get("tasks").and_then(Json::as_f64), Some(17.0));
    }

    #[test]
    fn volatile_telemetry_scrubs_away() {
        let reg = synthetic_registry();
        let snap = reg.timeprof_snapshot().expect("armed");
        let doc = timeprof_doc("figX", Scale::Smoke, &snap, 1.5);
        let clean = crate::obs_out::scrub_volatile(&doc);
        assert!(clean.get("frames").is_some(), "frame structure is deterministic");
        assert!(clean.get("handlers").is_some(), "handler counts are deterministic");
        assert!(clean.get("time_telemetry").is_none());
        assert!(clean.get("wall_s").is_none());
    }

    #[test]
    fn worker_use_converts_field_for_field() {
        let converted = worker_use(&[cdnc_par::WorkerStat {
            worker: 2,
            busy_ns: 10,
            steal_ns: 20,
            idle_ns: 30,
            join_wait_ns: 40,
            chunks: 5,
            tasks: 6,
        }]);
        assert_eq!(converted.len(), 1);
        let w = &converted[0];
        assert_eq!((w.worker, w.busy_ns, w.steal_ns), (2, 10, 20));
        assert_eq!((w.idle_ns, w.join_wait_ns, w.chunks, w.tasks), (30, 40, 5, 6));
    }

    #[test]
    fn table_lists_frames_handlers_and_workers() {
        let reg = synthetic_registry();
        let snap = reg.timeprof_snapshot().expect("armed");
        let table = timeprof_table(&snap);
        assert!(table.contains("run/step"), "{table}");
        assert!(table.contains("ev_publish"), "{table}");
        assert!(table.contains("worker"), "{table}");
    }
}
