//! Profile-artifact output for `experiments profile`: one
//! `<figure>.profile.json` per run, attributing the run's allocation work
//! to subsystems and bundling the structural probes (queue-depth at pop,
//! per-kind network accounting, per-node state sizes) the profiling gate
//! armed.
//!
//! The document has a deliberate deterministic/volatile split. The
//! `probes` section comes from registry instruments sharded and absorbed
//! in task order, so it is bit-identical for every `--jobs N`. The
//! `attribution` section (alloc count and bytes per *named* subsystem) is
//! workload-dominated but fed by the process-global allocator, so
//! per-thread warm-up inside scopes adds a sub-0.1% jitter across worker
//! counts — reproducible for a fixed `--jobs`, tolerance-compared across
//! them. Everything tied to process-level timing — the `other` bucket
//! (thread spawns, orchestration), live/peak levels, spike counts, wall
//! clock, RSS — sits under keys listed in
//! [`crate::obs_out::VOLATILE_KEYS`], so `obs-diff` ignores it.

use crate::scale::Scale;
use cdnc_net::PacketKind;
use cdnc_obs::profile::Subsystem;
use cdnc_obs::{HistogramSnapshot, Json, MetricsSnapshot, ProfileSnapshot, Registry};
use std::io;
use std::path::{Path, PathBuf};

/// A histogram snapshot as a compact JSON object (no bucket vector — the
/// exact moments are what the artifact consumers compare).
fn histogram_doc(h: &HistogramSnapshot) -> Json {
    let mean = if h.count > 0 { h.sum / h.count as f64 } else { 0.0 };
    Json::obj()
        .field("count", h.count)
        .field("sum", h.sum)
        .field("mean", mean)
        .field("min", if h.count > 0 { h.min } else { 0.0 })
        .field("max", if h.count > 0 { h.max } else { 0.0 })
}

/// The deterministic structural-probe section, read from the registry
/// snapshot of a profiling-enabled run.
fn probes_doc(snap: &MetricsSnapshot) -> Json {
    let gauge = |name: &str| snap.gauges.iter().find(|(n, _)| n == name).map(|(_, g)| *g);
    let mut net_pkts = Json::obj();
    let mut net_bytes = Json::obj();
    let mut inflight_peak = Json::obj();
    for kind in PacketKind::ALL {
        let suffix = kind.metric_suffix();
        net_pkts = net_pkts.field(suffix, snap.counter(&format!("net_pkts_{suffix}")));
        net_bytes = net_bytes.field(suffix, snap.counter(&format!("net_bytes_{suffix}")));
        inflight_peak = inflight_peak.field(
            suffix,
            gauge(&format!("net_inflight_pkts_{suffix}")).map_or(0, |g| g.high_water),
        );
    }
    let mut doc = Json::obj();
    for (name, key) in [
        ("sched_queue_depth_at_pop", "queue_depth_at_pop"),
        ("sim_node_state_bytes", "node_state_bytes"),
        ("sim_user_state_bytes", "user_state_bytes"),
    ] {
        if let Some(h) = snap.histogram(name) {
            doc = doc.field(key, histogram_doc(h));
        }
    }
    doc.field(
        "net",
        Json::obj()
            .field("pkts", net_pkts)
            .field("bytes", net_bytes)
            .field("inflight_peak_pkts", inflight_peak)
            .field("inflight_peak_bytes", gauge("net_inflight_bytes").map_or(0, |g| g.high_water)),
    )
}

/// The full profile document for one figure run.
///
/// `window` is the allocator delta bracketing the run
/// ([`cdnc_obs::ProfileSnapshot::window_since`]); `reg` the figure's
/// registry after the run.
pub fn profile_doc(
    id: &str,
    scale: Scale,
    window: &ProfileSnapshot,
    reg: &Registry,
    wall_s: f64,
) -> Json {
    let snap = reg.snapshot();
    let mut attribution = Json::obj();
    let mut telemetry_subsystems = Json::obj();
    for s in Subsystem::ALL {
        let stats = window.subsystem(s);
        if s.is_named() {
            attribution = attribution.field(
                s.name(),
                Json::obj().field("allocs", stats.allocs).field("bytes", stats.bytes),
            );
        }
        telemetry_subsystems = telemetry_subsystems.field(
            s.name(),
            Json::obj()
                .field("allocs", stats.allocs)
                .field("bytes", stats.bytes)
                .field("frees", stats.frees)
                .field("freed_bytes", stats.freed_bytes)
                .field("live_bytes", stats.live_bytes)
                .field("peak_live_bytes", stats.peak_live_bytes),
        );
    }
    Json::obj()
        .field("figure", id)
        .field("scale", format!("{scale:?}"))
        .field("wall_s", wall_s)
        .field("attribution", attribution)
        .field("probes", probes_doc(&snap))
        .field(
            "allocator_telemetry",
            Json::obj()
                .field("installed", cdnc_obs::profile::installed())
                .field("window_total_allocs", window.total_allocs)
                .field("window_total_bytes", window.total_bytes)
                .field("attributed_fraction", window.attributed_fraction())
                .field("live_bytes", window.live_bytes)
                .field("peak_live_bytes", window.peak_live_bytes)
                .field("subsystems", telemetry_subsystems),
        )
        .field(
            "spikes",
            Json::obj()
                .field("count", snap.counter("profile_mem_spikes"))
                .field("multiple", reg.profile_config().map_or(0.0, |c| c.spike_multiple)),
        )
        .field("peak_rss_kb", crate::perf::peak_rss_kb())
}

/// Writes `<dir>/<figure-id>.profile.json`. Returns the artifact path.
pub fn write_profile_artifact(
    dir: &Path,
    id: &str,
    scale: Scale,
    window: &ProfileSnapshot,
    reg: &Registry,
    wall_s: f64,
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{id}.profile.json"));
    std::fs::write(&path, profile_doc(id, scale, window, reg, wall_s).to_pretty())?;
    Ok(path)
}

/// Formats the per-subsystem breakdown table printed after
/// `experiments profile`.
pub fn profile_table(window: &ProfileSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {:<10}  {:>12}  {:>14}  {:>8}  {:>14}\n",
        "subsystem", "allocs", "bytes", "share", "peak live"
    ));
    let denominator: u64 = Subsystem::ALL.iter().map(|&s| window.subsystem(s).bytes).sum();
    for s in Subsystem::ALL {
        let stats = window.subsystem(s);
        let share =
            if denominator > 0 { 100.0 * stats.bytes as f64 / denominator as f64 } else { 0.0 };
        out.push_str(&format!(
            "  {:<10}  {:>12}  {:>14}  {:>7.1}%  {:>14}\n",
            s.name(),
            stats.allocs,
            stats.bytes,
            share,
            stats.peak_live_bytes,
        ));
    }
    out.push_str(&format!(
        "  attributed to named subsystems: {:.1}% of tagged bytes\n",
        100.0 * window.attributed_fraction()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_obs::profile::ProfileCounters;
    use cdnc_obs::ProfileConfig;

    fn synthetic_window() -> ProfileSnapshot {
        let counters = ProfileCounters::new();
        counters.set_enabled(true);
        counters.record_alloc(Subsystem::Scheduler, 1000);
        counters.record_alloc(Subsystem::Net, 3000);
        counters.record_alloc(Subsystem::Other, 500);
        counters.snapshot()
    }

    #[test]
    fn doc_splits_attribution_from_telemetry() {
        let reg = Registry::enabled();
        reg.enable_profiling(ProfileConfig::default());
        reg.counter("net_pkts_update").add(7);
        reg.histogram("sched_queue_depth_at_pop").record(3.0);
        let window = synthetic_window();
        let doc = profile_doc("figX", Scale::Smoke, &window, &reg, 1.5);
        let attribution = doc.get("attribution").expect("attribution section");
        assert_eq!(
            attribution.get("scheduler").and_then(|s| s.get("bytes")).and_then(Json::as_f64),
            Some(1000.0)
        );
        assert!(attribution.get("other").is_none(), "other is telemetry, not attribution");
        let telemetry = doc.get("allocator_telemetry").expect("telemetry section");
        assert_eq!(
            telemetry
                .get("subsystems")
                .and_then(|s| s.get("other"))
                .and_then(|o| o.get("bytes"))
                .and_then(Json::as_f64),
            Some(500.0)
        );
        let probes = doc.get("probes").expect("probes section");
        assert_eq!(
            probes
                .get("net")
                .and_then(|n| n.get("pkts"))
                .and_then(|p| p.get("update"))
                .and_then(Json::as_f64),
            Some(7.0)
        );
        assert_eq!(
            probes.get("queue_depth_at_pop").and_then(|h| h.get("count")).and_then(Json::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn volatile_sections_scrub_away() {
        let reg = Registry::enabled();
        reg.enable_profiling(ProfileConfig::default());
        let doc = profile_doc("figX", Scale::Smoke, &synthetic_window(), &reg, 1.5);
        let clean = crate::obs_out::scrub_volatile(&doc);
        assert!(clean.get("attribution").is_some(), "attribution is deterministic");
        assert!(clean.get("probes").is_some(), "probes are deterministic");
        assert!(clean.get("allocator_telemetry").is_none());
        assert!(clean.get("spikes").is_none());
        assert!(clean.get("wall_s").is_none());
        assert!(clean.get("peak_rss_kb").is_none());
    }

    #[test]
    fn table_shows_share_and_attribution() {
        let table = profile_table(&synthetic_window());
        assert!(table.contains("scheduler"), "{table}");
        assert!(table.contains("88.9%"), "4000/4500 named: {table}");
    }
}
