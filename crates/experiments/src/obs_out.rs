//! Run-artifact output for the experiments binary: per-figure JSON
//! artifacts, optional JSONL event logs, a consolidated summary, and the
//! end-of-run phase-timing table printed under `--obs`.

use crate::report::FigureReport;
use crate::scale::Scale;
use cdnc_obs::{digest_str, write_event_log, Json, Level, Registry, RunArtifact};
use std::io;
use std::path::{Path, PathBuf};

/// Default artifact directory, relative to the working directory.
pub const DEFAULT_OBS_DIR: &str = "results/obs";

/// Default flight-recorder anomaly threshold: adoption lag above this many
/// seconds retains the update's full trace.
pub const DEFAULT_TRACE_THRESHOLD_S: f64 = 60.0;

/// `--obs` / `--obs-log` / `--trace` settings parsed from the command line.
#[derive(Debug, Clone)]
pub struct ObsSettings {
    /// `--obs`: collect metrics and write per-figure artifacts.
    pub enabled: bool,
    /// `--obs-log <level>`: also collect a structured event log at this
    /// minimum level and write it next to the artifact as JSONL.
    pub log_level: Option<Level>,
    /// Where artifacts go (`results/obs` unless overridden).
    pub dir: PathBuf,
    /// `--trace`: record causal update-propagation traces and write them as
    /// Chrome trace-event JSON next to the figure artifacts.
    pub trace: bool,
    /// `--trace-dir <dir>`: trace/flight-recorder output directory
    /// (defaults to the artifact dir).
    pub trace_dir: Option<PathBuf>,
    /// `--trace-threshold <s>`: flight-recorder adoption-lag threshold.
    pub trace_threshold_s: f64,
}

impl ObsSettings {
    /// Disabled settings: no registry, no files.
    pub fn off() -> Self {
        ObsSettings {
            enabled: false,
            log_level: None,
            dir: PathBuf::from(DEFAULT_OBS_DIR),
            trace: false,
            trace_dir: None,
            trace_threshold_s: DEFAULT_TRACE_THRESHOLD_S,
        }
    }

    /// Where trace JSON and flight-recorder dumps go.
    pub fn trace_dir(&self) -> PathBuf {
        self.trace_dir.clone().unwrap_or_else(|| self.dir.clone())
    }

    /// A fresh registry per these settings: enabled (with the event log
    /// and/or tracer armed when requested) or the inert disabled registry.
    pub fn registry(&self) -> Registry {
        if !self.enabled && !self.trace {
            return Registry::disabled();
        }
        let reg = Registry::enabled();
        if let Some(level) = self.log_level {
            reg.enable_events(level, 65_536);
        }
        if self.trace {
            reg.enable_tracing();
        }
        reg
    }
}

/// The figure's headline numbers as the artifact's `summary` object.
pub fn figure_summary(report: &FigureReport, scale: Scale, wall_s: f64) -> Json {
    let keyvals =
        report.keyvals.iter().fold(Json::obj(), |obj, (name, value)| obj.field(name, *value));
    Json::obj()
        .field("title", report.title)
        .field("scale", format!("{scale:?}"))
        .field("wall_s", wall_s)
        .field("keyvals", keyvals)
}

/// Writes `<dir>/<figure-id>.json` (and `<figure-id>.jsonl` when the event
/// log is armed) from one figure's registry. Returns the artifact path.
pub fn write_figure_artifact(
    dir: &Path,
    id: &str,
    scale: Scale,
    report: &FigureReport,
    wall_s: f64,
    reg: &Registry,
) -> io::Result<PathBuf> {
    let seed = scale.crawl_config().seed;
    let artifact = RunArtifact::new(id, seed, digest_str(&format!("{id}:{scale:?}")))
        .with_summary(figure_summary(report, scale, wall_s));
    let path = artifact.write_to_dir(dir, reg)?;
    write_event_log(dir, id, reg)?;
    Ok(path)
}

/// Formats the phase-timing table printed at the end of an `--obs` run.
/// Returns `None` when no spans were recorded.
pub fn timing_table(reg: &Registry) -> Option<String> {
    let snap = reg.snapshot();
    if snap.spans.is_empty() {
        return None;
    }
    let width = snap.spans.iter().map(|(p, _)| p.len()).max().unwrap_or(5).max(5);
    let mut out = String::new();
    out.push_str(&format!("  {:<width$}  {:>7}  {:>10}\n", "phase", "count", "total"));
    for (path, timing) in &snap.spans {
        out.push_str(&format!(
            "  {:<width$}  {:>7}  {:>9.3}s\n",
            path,
            timing.count,
            timing.total_secs()
        ));
    }
    Some(out)
}

/// One row of the consolidated `summary.json` written by `experiments all`.
pub fn summary_entry(id: &str, wall_s: f64, reg: &Registry) -> Json {
    let events = reg.snapshot().counter("sched_events_processed");
    let events_per_s = if wall_s > 0.0 { events as f64 / wall_s } else { 0.0 };
    Json::obj()
        .field("figure", id)
        .field("wall_s", wall_s)
        .field("events", events)
        .field("events_per_s", events_per_s)
}

/// Writes `<dir>/summary.json` consolidating every figure of an `all` run.
pub fn write_summary(dir: &Path, scale: Scale, entries: Vec<Json>) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let total_wall: f64 =
        entries.iter().filter_map(|e| e.get("wall_s").and_then(Json::as_f64)).sum();
    let total_events: f64 =
        entries.iter().filter_map(|e| e.get("events").and_then(Json::as_f64)).sum();
    let doc = Json::obj()
        .field("scale", format!("{scale:?}"))
        .field("total_wall_s", total_wall)
        .field("total_events", total_events)
        .field("figures", Json::Arr(entries));
    let path = dir.join("summary.json");
    std::fs::write(&path, doc.to_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_settings_yield_inert_registry() {
        let s = ObsSettings::off();
        assert!(!s.registry().is_enabled());
    }

    #[test]
    fn enabled_settings_arm_event_log() {
        let s = ObsSettings { enabled: true, log_level: Some(Level::Debug), ..ObsSettings::off() };
        let reg = s.registry();
        assert!(reg.is_enabled());
        reg.event(Level::Debug, "probe", Json::obj);
        assert_eq!(reg.drain_events().len(), 1);
        assert!(!reg.tracer().is_enabled(), "tracing stays off without --trace");
    }

    #[test]
    fn trace_flag_arms_tracer_even_without_obs() {
        let s = ObsSettings { trace: true, ..ObsSettings::off() };
        let reg = s.registry();
        assert!(reg.is_enabled());
        assert!(reg.tracer().is_enabled());
        assert_eq!(s.trace_dir(), PathBuf::from(DEFAULT_OBS_DIR));
        let custom =
            ObsSettings { trace: true, trace_dir: Some(PathBuf::from("/tmp/x")), ..s.clone() };
        assert_eq!(custom.trace_dir(), PathBuf::from("/tmp/x"));
    }

    #[test]
    fn summary_entry_computes_rate() {
        let reg = Registry::enabled();
        reg.counter("sched_events_processed").add(500);
        let e = summary_entry("figX", 2.0, &reg);
        assert_eq!(e.get("events").and_then(Json::as_f64), Some(500.0));
        assert_eq!(e.get("events_per_s").and_then(Json::as_f64), Some(250.0));
    }

    #[test]
    fn timing_table_lists_phases() {
        let reg = Registry::enabled();
        {
            let _g = reg.span("outer");
            let _h = reg.span("inner");
        }
        let table = timing_table(&reg).expect("spans recorded");
        assert!(table.contains("outer"));
        assert!(table.contains("outer/inner"));
        assert!(timing_table(&Registry::disabled()).is_none());
    }
}
