//! Run-artifact output for the experiments binary: per-figure JSON
//! artifacts, optional JSONL event logs, a consolidated summary, and the
//! end-of-run phase-timing table printed under `--obs`.

use crate::report::FigureReport;
use crate::scale::Scale;
use cdnc_obs::{
    chain_hex, digest_str, json, write_event_log, DigestConfig, Json, Level, Registry, RunArtifact,
};
use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// Default artifact directory, relative to the working directory.
pub const DEFAULT_OBS_DIR: &str = "results/obs";

/// Default flight-recorder anomaly threshold: adoption lag above this many
/// seconds retains the update's full trace.
pub const DEFAULT_TRACE_THRESHOLD_S: f64 = 60.0;

/// `--obs` / `--obs-log` / `--trace` / `--series` settings parsed from the
/// command line.
#[derive(Debug, Clone)]
pub struct ObsSettings {
    /// `--obs`: collect metrics and write per-figure artifacts.
    pub enabled: bool,
    /// `--obs-log <level>`: also collect a structured event log at this
    /// minimum level and write it next to the artifact as JSONL.
    pub log_level: Option<Level>,
    /// Where artifacts go (`results/obs` unless overridden).
    pub dir: PathBuf,
    /// `--trace`: record causal update-propagation traces and write them as
    /// Chrome trace-event JSON next to the figure artifacts.
    pub trace: bool,
    /// `--trace-dir <dir>`: trace/flight-recorder output directory
    /// (defaults to the artifact dir).
    pub trace_dir: Option<PathBuf>,
    /// `--trace-threshold <s>`: flight-recorder adoption-lag threshold.
    pub trace_threshold_s: f64,
    /// `--series`: sample registered gauges/counters on a sim-time cadence
    /// and write per-figure `<figure>.series.json` next to the artifacts.
    pub series: bool,
    /// `--series-cadence <s>`: sampling cadence in simulated time.
    pub series_cadence_us: u64,
    /// `profile` subcommand: arm the registry's profiling gate (structural
    /// probes: queue depth at pop, per-kind network accounting, state-size
    /// estimates, the memory-spike probe).
    pub profile: bool,
    /// `--spike-multiple <f>`: an interval allocating more than this
    /// multiple of the running median triggers a `MemorySpike` span.
    pub spike_multiple: f64,
    /// `timeprof` subcommand: arm the registry's time-profiling gate
    /// (hierarchical span-frame attribution, per-kind dispatch timers,
    /// worker utilization).
    pub timeprof: bool,
    /// `--digest`: arm the determinism audit trail (chained event digests,
    /// periodic checkpoints) and write `<figure>.digest.json`.
    pub digest: bool,
    /// `--digest-every <n>`: folds between digest checkpoints.
    pub digest_every: u64,
    /// `--digest-perturb <idx>`: flip one bit of the folded word at this
    /// local fold index in every segment (divergence self-test).
    pub digest_perturb: Option<u64>,
    /// `--health`: arm the run-health counters and stream a live-updating
    /// `<figure>.health.json` heartbeat while figures run.
    pub health: bool,
    /// `--stall-after <s>`: wall-clock event-counter silence before the
    /// heartbeat's watchdog declares a stall.
    pub stall_after_s: f64,
}

impl ObsSettings {
    /// Disabled settings: no registry, no files.
    pub fn off() -> Self {
        ObsSettings {
            enabled: false,
            log_level: None,
            dir: PathBuf::from(DEFAULT_OBS_DIR),
            trace: false,
            trace_dir: None,
            trace_threshold_s: DEFAULT_TRACE_THRESHOLD_S,
            series: false,
            series_cadence_us: cdnc_obs::DEFAULT_CADENCE_US,
            profile: false,
            spike_multiple: cdnc_obs::DEFAULT_SPIKE_MULTIPLE,
            timeprof: false,
            digest: false,
            digest_every: cdnc_obs::DEFAULT_CHECKPOINT_EVERY,
            digest_perturb: None,
            health: false,
            stall_after_s: cdnc_obs::DEFAULT_STALL_AFTER_MS as f64 / 1e3,
        }
    }

    /// Where trace JSON and flight-recorder dumps go.
    pub fn trace_dir(&self) -> PathBuf {
        self.trace_dir.clone().unwrap_or_else(|| self.dir.clone())
    }

    /// A fresh registry per these settings: enabled (with the event log,
    /// tracer, and/or series sampler armed when requested) or the inert
    /// disabled registry.
    pub fn registry(&self) -> Registry {
        if !self.enabled
            && !self.trace
            && !self.series
            && !self.profile
            && !self.timeprof
            && !self.digest
            && !self.health
        {
            return Registry::disabled();
        }
        let reg = Registry::enabled();
        if let Some(level) = self.log_level {
            reg.enable_events(level, 65_536);
        }
        if self.trace {
            reg.enable_tracing();
        }
        if self.series {
            reg.enable_series(self.series_cadence_us);
        }
        if self.profile {
            reg.enable_profiling(cdnc_obs::ProfileConfig {
                spike_cadence_us: self.series_cadence_us,
                spike_multiple: self.spike_multiple,
            });
        }
        if self.timeprof {
            reg.enable_timeprof();
        }
        if self.digest {
            reg.enable_digest(DigestConfig {
                checkpoint_every: self.digest_every,
                perturb: self.digest_perturb,
                trap: None,
            });
        }
        if self.health {
            reg.enable_health();
        }
        reg
    }
}

/// Writes `<dir>/<figure-id>.digest.json` from one figure's registry: the
/// determinism audit trail (run chain, per-segment chains, periodic
/// checkpoints) plus the scenario identity (`figure`, `scale`,
/// `checkpoint_every`, `perturb`) the `divergence` subcommand needs to
/// re-run the recorded scenario. Returns `None` when the digest is not
/// armed.
pub fn write_figure_digest(
    dir: &Path,
    id: &str,
    scale: Scale,
    reg: &Registry,
) -> io::Result<Option<PathBuf>> {
    let Some(snap) = reg.digest_snapshot() else { return Ok(None) };
    let config = reg.digest_config().unwrap_or_default();
    std::fs::create_dir_all(dir)?;
    let mut doc = Json::obj()
        .field("figure", id)
        .field("scale", scale.arg_name())
        .field("checkpoint_every", config.checkpoint_every)
        .field("perturb", config.perturb.map_or(Json::Null, Json::from));
    if let (Json::Obj(dst), Json::Obj(src)) = (&mut doc, snap.to_json()) {
        dst.extend(src);
    }
    let path = dir.join(format!("{id}.digest.json"));
    std::fs::write(&path, doc.to_pretty())?;
    Ok(Some(path))
}

/// Writes `<dir>/<figure-id>.series.json` from one figure's registry:
/// every sampled series (sim-time timestamps, so deterministic and safe to
/// diff). Returns `None` when the sampler is not armed.
pub fn write_figure_series(dir: &Path, id: &str, reg: &Registry) -> io::Result<Option<PathBuf>> {
    if !reg.sampler().is_enabled() {
        return Ok(None);
    }
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{id}.series.json"));
    std::fs::write(&path, reg.series_snapshot().to_json().to_pretty())?;
    Ok(Some(path))
}

/// Writes `<dir>/<figure-id>.workload.json` from one figure's report: the
/// named `(x, y)` distribution curves (latency/staleness CDFs) the figure
/// recorded. Purely derived from simulation output, so deterministic and
/// safe to diff. Returns `None` when the report carries no curves.
pub fn write_figure_workload(
    dir: &Path,
    id: &str,
    report: &FigureReport,
) -> io::Result<Option<PathBuf>> {
    if report.curves.is_empty() {
        return Ok(None);
    }
    std::fs::create_dir_all(dir)?;
    let curves = report
        .curves
        .iter()
        .map(|(name, points)| {
            let pts = points
                .iter()
                .map(|&(x, y)| Json::Arr(vec![Json::from(x), Json::from(y)]))
                .collect();
            Json::obj().field("name", name.as_str()).field("points", Json::Arr(pts))
        })
        .collect();
    let doc = Json::obj().field("figure", id).field("curves", Json::Arr(curves));
    let path = dir.join(format!("{id}.workload.json"));
    std::fs::write(&path, doc.to_pretty())?;
    Ok(Some(path))
}

/// The figure's headline numbers as the artifact's `summary` object.
pub fn figure_summary(report: &FigureReport, scale: Scale, wall_s: f64) -> Json {
    let keyvals =
        report.keyvals.iter().fold(Json::obj(), |obj, (name, value)| obj.field(name, *value));
    Json::obj()
        .field("title", report.title)
        .field("scale", format!("{scale:?}"))
        .field("wall_s", wall_s)
        .field("keyvals", keyvals)
}

/// Writes `<dir>/<figure-id>.json` (and `<figure-id>.jsonl` when the event
/// log is armed) from one figure's registry. Returns the artifact path.
pub fn write_figure_artifact(
    dir: &Path,
    id: &str,
    scale: Scale,
    report: &FigureReport,
    wall_s: f64,
    reg: &Registry,
) -> io::Result<PathBuf> {
    let seed = scale.crawl_config().seed;
    let artifact = RunArtifact::new(id, seed, digest_str(&format!("{id}:{scale:?}")))
        .with_summary(figure_summary(report, scale, wall_s));
    let path = artifact.write_to_dir(dir, reg)?;
    write_event_log(dir, id, reg)?;
    Ok(path)
}

/// Formats the phase-timing table printed at the end of an `--obs` run.
/// Returns `None` when no spans were recorded.
pub fn timing_table(reg: &Registry) -> Option<String> {
    let snap = reg.snapshot();
    if snap.spans.is_empty() {
        return None;
    }
    let width = snap.spans.iter().map(|(p, _)| p.len()).max().unwrap_or(5).max(5);
    let mut out = String::new();
    out.push_str(&format!("  {:<width$}  {:>7}  {:>10}\n", "phase", "count", "total"));
    for (path, timing) in &snap.spans {
        out.push_str(&format!(
            "  {:<width$}  {:>7}  {:>9.3}s\n",
            path,
            timing.count,
            timing.total_secs()
        ));
    }
    Some(out)
}

/// One row of the consolidated `summary.json` written by `experiments all`.
/// Scheduler pressure rides along: the queue-depth high-water mark always,
/// and the pop-depth histogram's moments when the profiling gate armed it.
/// Figures that ran a request plane additionally get a `request_plane`
/// object with the workload counters (requests, hit/delayed/miss split,
/// evictions, origin fetches, churn events).
pub fn summary_entry(id: &str, wall_s: f64, jobs: usize, reg: &Registry) -> Json {
    let snap = reg.snapshot();
    let events = snap.counter("sched_events_processed");
    let events_per_s = if wall_s > 0.0 { events as f64 / wall_s } else { 0.0 };
    let queue_hwm = snap
        .gauges
        .iter()
        .find(|(name, _)| name == "sched_queue_depth")
        .map_or(0, |(_, g)| g.high_water);
    let mut entry = Json::obj()
        .field("figure", id)
        .field("wall_s", wall_s)
        .field("jobs", jobs as u64)
        .field("events", events)
        .field("events_per_s", events_per_s)
        .field("msgs_lost_to_failed", snap.counter("sim_msgs_lost_to_failed"))
        .field("queue_depth_high_water", queue_hwm);
    if let Some(h) = snap.histogram("sched_queue_depth_at_pop") {
        let mean = if h.count > 0 { h.sum / h.count as f64 } else { 0.0 };
        entry = entry.field(
            "pop_depth",
            Json::obj()
                .field("count", h.count)
                .field("mean", mean)
                .field("max", if h.count > 0 { h.max } else { 0.0 }),
        );
    }
    if let Some(digest) = reg.digest_snapshot() {
        entry = entry.field(
            "digest",
            Json::obj()
                .field("chain", chain_hex(digest.chain))
                .field("events", digest.events)
                .field("segments", digest.segments.len() as u64),
        );
    }
    if let Some(health) = reg.health_snapshot() {
        entry = entry.field(
            "health",
            Json::obj()
                .field("sims_done", health.sims_done)
                .field("sims_total", health.sims_total)
                .field("stalls", health.stalls),
        );
    }
    if snap.counter("wl_requests") > 0 {
        entry = entry.field(
            "request_plane",
            Json::obj()
                .field("requests", snap.counter("wl_requests"))
                .field("hits", snap.counter("wl_hits"))
                .field("delayed_hits", snap.counter("wl_delayed_hits"))
                .field("misses", snap.counter("wl_misses"))
                .field("evictions", snap.counter("wl_evictions"))
                .field("origin_fetches", snap.counter("wl_origin_fetches"))
                .field("churn_events", snap.counter("wl_churn_events")),
        );
    }
    entry
}

/// Artifact fields that legitimately differ between bit-identical runs:
/// wall-clock measurements, memory footprints, and everything derived from
/// them. Scrubbed before artifact comparison.
pub const VOLATILE_KEYS: [&str; 11] = [
    "wall_s",
    "phases",
    "events_per_s",
    "total_wall_s",
    "jobs",
    "peak_rss_kb",
    "alloc_mb_estimate",
    "allocator_telemetry",
    "spikes",
    "time_telemetry",
    // Stall detection keys off wall-clock silence, so the count can differ
    // between bit-identical runs on a loaded machine.
    "stalls",
];

/// Strips the [`VOLATILE_KEYS`] from an artifact document, recursively.
/// What remains is the run's deterministic content: seeds, digests,
/// headline numbers, metrics, event counts.
pub fn scrub_volatile(doc: &Json) -> Json {
    match doc {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(key, _)| !VOLATILE_KEYS.contains(&key.as_str()))
                .map(|(key, value)| (key.clone(), scrub_volatile(value)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(scrub_volatile).collect()),
        other => other.clone(),
    }
}

/// Number of leaf fields (scalars) in a JSON document.
fn leaf_count(doc: &Json) -> usize {
    match doc {
        Json::Obj(fields) => fields.iter().map(|(_, v)| leaf_count(v)).sum(),
        Json::Arr(items) => items.iter().map(leaf_count).sum(),
        _ => 1,
    }
}

/// Number of leaf fields that differ between two documents: recursing into
/// matching objects/arrays, counting a missing subtree by its size.
fn count_leaf_diffs(a: &Json, b: &Json) -> usize {
    match (a, b) {
        (Json::Obj(fa), Json::Obj(fb)) => {
            let keys: BTreeSet<&str> = fa.iter().chain(fb).map(|(k, _)| k.as_str()).collect();
            let find = |fields: &'_ [(String, Json)], key: &str| {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
            };
            keys.iter()
                .map(|key| match (find(fa, key), find(fb, key)) {
                    (Some(x), Some(y)) => count_leaf_diffs(&x, &y),
                    (Some(x), None) | (None, Some(x)) => leaf_count(&x).max(1),
                    (None, None) => 0,
                })
                .sum()
        }
        (Json::Arr(ia), Json::Arr(ib)) => (0..ia.len().max(ib.len()))
            .map(|i| match (ia.get(i), ib.get(i)) {
                (Some(x), Some(y)) => count_leaf_diffs(x, y),
                (Some(x), None) | (None, Some(x)) => leaf_count(x).max(1),
                (None, None) => 0,
            })
            .sum(),
        _ if a == b => 0,
        _ => 1,
    }
}

/// Collects up to `limit` leaf-level differences between two documents as
/// `path: a-value != b-value` lines (dotted object keys, `[i]` array
/// indices, `<missing>` when one side lacks the subtree). Depth-first in
/// key order, so the first line is the shallowest-leftmost difference.
pub fn diff_leaf_paths(a: &Json, b: &Json, limit: usize) -> Vec<String> {
    fn walk(a: Option<&Json>, b: Option<&Json>, path: &str, out: &mut Vec<String>, limit: usize) {
        if out.len() >= limit {
            return;
        }
        let render = |v: Option<&Json>| v.map_or("<missing>".to_owned(), Json::to_compact);
        match (a, b) {
            (Some(Json::Obj(fa)), Some(Json::Obj(fb))) => {
                let keys: BTreeSet<&str> = fa.iter().chain(fb).map(|(k, _)| k.as_str()).collect();
                for key in keys {
                    let sub =
                        if path.is_empty() { key.to_owned() } else { format!("{path}.{key}") };
                    fn find<'j>(fields: &'j [(String, Json)], key: &str) -> Option<&'j Json> {
                        fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
                    }
                    walk(find(fa, key), find(fb, key), &sub, out, limit);
                }
            }
            (Some(Json::Arr(ia)), Some(Json::Arr(ib))) => {
                for i in 0..ia.len().max(ib.len()) {
                    walk(ia.get(i), ib.get(i), &format!("{path}[{i}]"), out, limit);
                }
            }
            _ if a == b => {}
            _ => out.push(format!("{path}: {} != {}", render(a), render(b))),
        }
    }
    let mut out = Vec::new();
    walk(Some(a), Some(b), "", &mut out, limit);
    out
}

/// Per-top-level-key counts of differing leaf fields between two documents
/// (non-zero entries only, key order). Non-object roots fold under the
/// pseudo-key `<root>`.
pub fn diff_field_counts(a: &Json, b: &Json) -> Vec<(String, usize)> {
    match (a, b) {
        (Json::Obj(fa), Json::Obj(fb)) => {
            let keys: BTreeSet<&str> = fa.iter().chain(fb).map(|(k, _)| k.as_str()).collect();
            let find = |fields: &'_ [(String, Json)], key: &str| {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
            };
            keys.iter()
                .filter_map(|key| {
                    let n = match (find(fa, key), find(fb, key)) {
                        (Some(x), Some(y)) => count_leaf_diffs(&x, &y),
                        (Some(x), None) | (None, Some(x)) => leaf_count(&x).max(1),
                        (None, None) => 0,
                    };
                    (n > 0).then(|| ((*key).to_owned(), n))
                })
                .collect()
        }
        _ => {
            let n = count_leaf_diffs(a, b);
            if n > 0 {
                vec![("<root>".to_owned(), n)]
            } else {
                Vec::new()
            }
        }
    }
}

/// Compares two artifact directories, ignoring wall-clock fields: `.json`
/// documents are parsed and [`scrub_volatile`]bed before comparison (a
/// mismatch reports the per-key count of differing fields), `.folded`
/// flamegraph stacks are compared by their ordered stack paths (the
/// self-nanosecond values are wall clock), `.health.json` heartbeats are
/// skipped entirely (live wall-clock telemetry), all other files (event
/// `.jsonl`, `.trace.json` in simulated time) compared byte-for-byte.
/// Returns one line per difference — empty means the runs produced
/// identical observable output, the determinism contract `--jobs`
/// promises.
pub fn diff_artifact_dirs(a: &Path, b: &Path) -> io::Result<Vec<String>> {
    let list = |dir: &Path| -> io::Result<BTreeSet<String>> {
        let mut names = BTreeSet::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.insert(entry.file_name().to_string_lossy().into_owned());
            }
        }
        Ok(names)
    };
    let (names_a, names_b) = (list(a)?, list(b)?);
    let mut diffs = Vec::new();
    for name in names_a.union(&names_b) {
        // Health heartbeats are wall-clock by nature (rates, ETA, RSS) and
        // a run may be torn down mid-beat, so they never count as drift.
        if name.ends_with(".health.json") || name.ends_with(".health.json.tmp") {
            continue;
        }
        match (names_a.contains(name), names_b.contains(name)) {
            (true, false) => diffs.push(format!("{name}: only in {}", a.display())),
            (false, true) => diffs.push(format!("{name}: only in {}", b.display())),
            _ => {
                let (body_a, body_b) = (std::fs::read(a.join(name))?, std::fs::read(b.join(name))?);
                let detail = if name.ends_with(".json") && !name.ends_with(".trace.json") {
                    let parsed = |body: &[u8]| {
                        json::parse(&String::from_utf8_lossy(body)).map(|doc| scrub_volatile(&doc))
                    };
                    match (parsed(&body_a), parsed(&body_b)) {
                        (Ok(doc_a), Ok(doc_b)) => {
                            let counts = diff_field_counts(&doc_a, &doc_b);
                            (!counts.is_empty()).then(|| {
                                let per_key = counts
                                    .iter()
                                    .map(|(key, n)| format!("{key}: {n}"))
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                let paths = diff_leaf_paths(&doc_a, &doc_b, 10);
                                format!(
                                    "differing fields per key: {per_key}\n    {}",
                                    paths.join("\n    ")
                                )
                            })
                        }
                        _ => (body_a != body_b).then(|| "unparseable".to_owned()),
                    }
                } else if name.ends_with(".folded") {
                    let stacks = |body: &[u8]| {
                        cdnc_obs::parse_folded(&String::from_utf8_lossy(body)).map(|lines| {
                            lines.into_iter().map(|(path, _)| path).collect::<Vec<_>>()
                        })
                    };
                    match (stacks(&body_a), stacks(&body_b)) {
                        (Some(sa), Some(sb)) => (sa != sb).then(|| "stack paths differ".to_owned()),
                        _ => (body_a != body_b).then(|| "unparseable".to_owned()),
                    }
                } else {
                    (body_a != body_b).then(|| "byte-level".to_owned())
                };
                if let Some(detail) = detail {
                    diffs.push(format!("{name}: contents differ ({detail})"));
                }
            }
        }
    }
    Ok(diffs)
}

/// Writes `<dir>/summary.json` consolidating every figure of an `all` run.
/// Besides the per-figure rows it records the process's memory footprint:
/// peak RSS (kernel accounting, Linux only) and the cumulative-allocation
/// estimate (when the binary installed [`crate::perf::CountingAlloc`]).
/// Both are volatile — see [`VOLATILE_KEYS`].
pub fn write_summary(dir: &Path, scale: Scale, entries: Vec<Json>) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let total_wall: f64 =
        entries.iter().filter_map(|e| e.get("wall_s").and_then(Json::as_f64)).sum();
    let total_events: f64 =
        entries.iter().filter_map(|e| e.get("events").and_then(Json::as_f64)).sum();
    let doc = Json::obj()
        .field("scale", format!("{scale:?}"))
        .field("total_wall_s", total_wall)
        .field("total_events", total_events)
        .field("peak_rss_kb", crate::perf::peak_rss_kb())
        .field("alloc_mb_estimate", crate::perf::total_allocated_mb())
        .field("figures", Json::Arr(entries));
    let path = dir.join("summary.json");
    std::fs::write(&path, doc.to_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_settings_yield_inert_registry() {
        let s = ObsSettings::off();
        assert!(!s.registry().is_enabled());
    }

    #[test]
    fn enabled_settings_arm_event_log() {
        let s = ObsSettings { enabled: true, log_level: Some(Level::Debug), ..ObsSettings::off() };
        let reg = s.registry();
        assert!(reg.is_enabled());
        reg.event(Level::Debug, "probe", Json::obj);
        assert_eq!(reg.drain_events().len(), 1);
        assert!(!reg.tracer().is_enabled(), "tracing stays off without --trace");
    }

    #[test]
    fn trace_flag_arms_tracer_even_without_obs() {
        let s = ObsSettings { trace: true, ..ObsSettings::off() };
        let reg = s.registry();
        assert!(reg.is_enabled());
        assert!(reg.tracer().is_enabled());
        assert_eq!(s.trace_dir(), PathBuf::from(DEFAULT_OBS_DIR));
        let custom =
            ObsSettings { trace: true, trace_dir: Some(PathBuf::from("/tmp/x")), ..s.clone() };
        assert_eq!(custom.trace_dir(), PathBuf::from("/tmp/x"));
    }

    #[test]
    fn summary_entry_computes_rate() {
        let reg = Registry::enabled();
        reg.counter("sched_events_processed").add(500);
        reg.counter("sim_msgs_lost_to_failed").add(3);
        let e = summary_entry("figX", 2.0, 4, &reg);
        assert_eq!(e.get("events").and_then(Json::as_f64), Some(500.0));
        assert_eq!(e.get("events_per_s").and_then(Json::as_f64), Some(250.0));
        assert_eq!(e.get("jobs").and_then(Json::as_f64), Some(4.0));
        assert_eq!(e.get("msgs_lost_to_failed").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn summary_entry_surfaces_the_request_plane() {
        let reg = Registry::enabled();
        let plain = summary_entry("figX", 1.0, 1, &reg);
        assert!(plain.get("request_plane").is_none(), "absent without workload traffic");
        reg.counter("wl_requests").add(10);
        reg.counter("wl_hits").add(6);
        reg.counter("wl_delayed_hits").add(1);
        reg.counter("wl_misses").add(3);
        reg.counter("wl_origin_fetches").add(3);
        let e = summary_entry("figX", 1.0, 1, &reg);
        let rp = e.get("request_plane").expect("request plane surfaced");
        assert_eq!(rp.get("requests").and_then(Json::as_f64), Some(10.0));
        assert_eq!(rp.get("hits").and_then(Json::as_f64), Some(6.0));
        assert_eq!(rp.get("delayed_hits").and_then(Json::as_f64), Some(1.0));
        assert_eq!(rp.get("misses").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn workload_file_written_only_with_curves() {
        let dir = std::env::temp_dir().join(format!("cdnc-workload-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut report = FigureReport::new("figX", "test");
        assert!(write_figure_workload(&dir, "figX", &report).unwrap().is_none());
        report.curve("latency_cdf", vec![(0.0, 0.5), (1.0, 1.0)]);
        let path = write_figure_workload(&dir, "figX", &report).unwrap().expect("curves present");
        assert!(path.ends_with("figX.workload.json"));
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("figure").and_then(Json::as_str), Some("figX"));
        let Some(Json::Arr(curves)) = doc.get("curves") else { panic!("curves array") };
        assert_eq!(curves.len(), 1);
        assert_eq!(curves[0].get("name").and_then(Json::as_str), Some("latency_cdf"));
        let Some(Json::Arr(points)) = curves[0].get("points") else { panic!("points array") };
        assert_eq!(points.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timeprof_flag_arms_gate_even_without_obs() {
        let s = ObsSettings { timeprof: true, ..ObsSettings::off() };
        let reg = s.registry();
        assert!(reg.is_enabled());
        assert!(reg.timeprof_enabled());
        assert!(!ObsSettings::off().registry().timeprof_enabled());
    }

    #[test]
    fn summary_entry_reports_scheduler_pressure() {
        let reg = Registry::enabled();
        let depth = reg.gauge("sched_queue_depth");
        depth.add(12);
        depth.sub(10);
        let plain = summary_entry("figX", 1.0, 1, &reg);
        assert_eq!(plain.get("queue_depth_high_water").and_then(Json::as_f64), Some(12.0));
        assert!(plain.get("pop_depth").is_none(), "histogram absent when profiling is off");
        reg.histogram("sched_queue_depth_at_pop").record(4.0);
        let probed = summary_entry("figX", 1.0, 1, &reg);
        let pop = probed.get("pop_depth").expect("histogram surfaced");
        assert_eq!(pop.get("count").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn dir_diff_compares_folded_stacks_structurally() {
        let base = std::env::temp_dir().join(format!("cdnc-folded-diff-{}", std::process::id()));
        let (da, db) = (base.join("a"), base.join("b"));
        std::fs::create_dir_all(&da).unwrap();
        std::fs::create_dir_all(&db).unwrap();
        std::fs::write(da.join("fig17.folded"), "run;step 100\nrun 900\n").unwrap();
        std::fs::write(db.join("fig17.folded"), "run;step 350\nrun 651\n").unwrap();
        assert!(
            diff_artifact_dirs(&da, &db).unwrap().is_empty(),
            "self-time drift over identical stacks is ignored"
        );
        std::fs::write(db.join("fig17.folded"), "run;other 350\nrun 651\n").unwrap();
        let diffs = diff_artifact_dirs(&da, &db).unwrap();
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(diffs[0].contains("stack paths differ"), "{diffs:?}");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn scrub_drops_wall_clock_fields_recursively() {
        let doc = Json::obj()
            .field("seed", 7u64)
            .field("wall_s", 1.25)
            .field("phases", Json::obj().field("crawl", 0.5))
            .field(
                "figures",
                Json::Arr(vec![Json::obj().field("figure", "fig3").field("events_per_s", 9.0)]),
            );
        let clean = scrub_volatile(&doc);
        assert_eq!(clean.get("seed").and_then(Json::as_f64), Some(7.0));
        assert!(clean.get("wall_s").is_none());
        assert!(clean.get("phases").is_none());
        let Some(Json::Arr(figs)) = clean.get("figures") else { panic!("figures kept") };
        assert!(figs[0].get("events_per_s").is_none());
        assert_eq!(figs[0].get("figure"), Some(&Json::Str("fig3".into())));
    }

    #[test]
    fn dir_diff_ignores_volatile_but_catches_real_drift() {
        let base = std::env::temp_dir().join(format!("cdnc-obs-diff-{}", std::process::id()));
        let (da, db) = (base.join("a"), base.join("b"));
        std::fs::create_dir_all(&da).unwrap();
        std::fs::create_dir_all(&db).unwrap();
        let doc = |wall: f64, seed: u64| {
            Json::obj().field("seed", seed).field("wall_s", wall).to_pretty()
        };
        std::fs::write(da.join("fig3.json"), doc(1.0, 7)).unwrap();
        std::fs::write(db.join("fig3.json"), doc(9.0, 7)).unwrap();
        assert!(diff_artifact_dirs(&da, &db).unwrap().is_empty(), "wall-clock drift ignored");
        std::fs::write(db.join("fig3.json"), doc(9.0, 8)).unwrap();
        std::fs::write(db.join("fig4.jsonl"), "x").unwrap();
        let diffs = diff_artifact_dirs(&da, &db).unwrap();
        assert_eq!(diffs.len(), 2, "{diffs:?}");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn series_flag_arms_sampler_even_without_obs() {
        let s = ObsSettings { series: true, ..ObsSettings::off() };
        let reg = s.registry();
        assert!(reg.is_enabled());
        assert!(reg.sampler().is_enabled());
        assert!(!reg.tracer().is_enabled(), "tracing stays off without --trace");
        assert!(!ObsSettings::off().registry().sampler().is_enabled());
    }

    #[test]
    fn series_file_written_only_when_armed() {
        let dir = std::env::temp_dir().join(format!("cdnc-series-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let off = Registry::enabled();
        assert!(write_figure_series(&dir, "figX", &off).unwrap().is_none());
        let reg = Registry::enabled();
        reg.enable_series(1_000);
        reg.series_gauge("g");
        reg.sampler().tick(5_000);
        let path = write_figure_series(&dir, "figX", &reg).unwrap().expect("armed sampler");
        let body = std::fs::read_to_string(&path).unwrap();
        let doc = json::parse(&body).unwrap();
        assert_eq!(doc.get("cadence_us").and_then(Json::as_f64), Some(1_000.0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_counts_fields_per_top_level_key() {
        let a = Json::obj()
            .field("seed", 7u64)
            .field("metrics", Json::obj().field("x", 1u64).field("y", 2u64));
        let b = Json::obj()
            .field("seed", 8u64)
            .field("metrics", Json::obj().field("x", 1u64).field("y", 3u64).field("z", 4u64));
        let counts = diff_field_counts(&a, &b);
        assert_eq!(counts, vec![("metrics".to_owned(), 2), ("seed".to_owned(), 1)]);
        assert!(diff_field_counts(&a, &a).is_empty());
        // Arrays count element-wise; missing tails count by leaf size.
        let xa = Json::obj().field("rows", Json::Arr(vec![Json::from(1u64), Json::from(2u64)]));
        let xb = Json::obj().field("rows", Json::Arr(vec![Json::from(1u64)]));
        assert_eq!(diff_field_counts(&xa, &xb), vec![("rows".to_owned(), 1)]);
    }

    #[test]
    fn digest_flag_arms_audit_trail_and_writes_artifact() {
        let s = ObsSettings {
            digest: true,
            digest_every: 16,
            digest_perturb: Some(3),
            ..ObsSettings::off()
        };
        let reg = s.registry();
        assert!(reg.is_enabled());
        assert!(reg.digest_enabled());
        let config = reg.digest_config().expect("armed");
        assert_eq!(config.checkpoint_every, 16);
        assert_eq!(config.perturb, Some(3));
        assert!(!ObsSettings::off().registry().digest_enabled());
        reg.digest().fold("probe", 1, 10, &[7]);
        let dir = std::env::temp_dir().join(format!("cdnc-digest-out-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(write_figure_digest(&dir, "figX", Scale::Smoke, &Registry::enabled())
            .unwrap()
            .is_none());
        let path =
            write_figure_digest(&dir, "figX", Scale::Smoke, &reg).unwrap().expect("digest armed");
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("figure").and_then(Json::as_str), Some("figX"));
        assert_eq!(doc.get("scale").and_then(Json::as_str), Some("smoke"));
        assert_eq!(doc.get("checkpoint_every").and_then(Json::as_f64), Some(16.0));
        assert_eq!(doc.get("perturb").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("events").and_then(Json::as_f64), Some(1.0));
        let chain = doc.get("chain").and_then(Json::as_str).expect("hex chain");
        assert!(cdnc_obs::parse_chain_hex(chain).is_some(), "chain parses: {chain}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn health_flag_arms_counters_and_summary_surfaces_them() {
        let s = ObsSettings { health: true, ..ObsSettings::off() };
        let reg = s.registry();
        assert!(reg.health_enabled());
        assert!(!ObsSettings::off().registry().health_enabled());
        reg.health().add_sims(3);
        reg.health().sim_done();
        let e = summary_entry("figX", 1.0, 1, &reg);
        let health = e.get("health").expect("health surfaced");
        assert_eq!(health.get("sims_total").and_then(Json::as_f64), Some(3.0));
        assert_eq!(health.get("sims_done").and_then(Json::as_f64), Some(1.0));
        assert_eq!(health.get("stalls").and_then(Json::as_f64), Some(0.0));
        assert!(
            summary_entry("figX", 1.0, 1, &Registry::enabled()).get("health").is_none(),
            "absent when health is not armed"
        );
    }

    #[test]
    fn summary_entry_carries_digest_chain() {
        let reg = Registry::enabled();
        assert!(summary_entry("figX", 1.0, 1, &reg).get("digest").is_none());
        reg.enable_digest(cdnc_obs::DigestConfig::default());
        reg.digest().fold("probe", 1, 10, &[]);
        let e = summary_entry("figX", 1.0, 1, &reg);
        let digest = e.get("digest").expect("digest surfaced");
        assert_eq!(digest.get("events").and_then(Json::as_f64), Some(1.0));
        let chain = digest.get("chain").and_then(Json::as_str).expect("hex chain");
        assert!(cdnc_obs::parse_chain_hex(chain).is_some());
    }

    #[test]
    fn dir_diff_skips_health_heartbeats_and_prints_paths() {
        let base = std::env::temp_dir().join(format!("cdnc-health-diff-{}", std::process::id()));
        let (da, db) = (base.join("a"), base.join("b"));
        std::fs::create_dir_all(&da).unwrap();
        std::fs::create_dir_all(&db).unwrap();
        std::fs::write(da.join("fig3.health.json"), "{\"events\": 1}").unwrap();
        std::fs::write(db.join("fig3.health.json"), "{\"events\": 2}").unwrap();
        assert!(
            diff_artifact_dirs(&da, &db).unwrap().is_empty(),
            "health heartbeats are wall-clock and never count as drift"
        );
        let doc = |seed: u64| Json::obj().field("seed", seed).to_pretty();
        std::fs::write(da.join("fig3.json"), doc(7)).unwrap();
        std::fs::write(db.join("fig3.json"), doc(8)).unwrap();
        let diffs = diff_artifact_dirs(&da, &db).unwrap();
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(diffs[0].contains("seed: 7 != 8"), "paths with values: {diffs:?}");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn leaf_paths_render_values_and_respect_the_cap() {
        let a = Json::obj()
            .field("seed", 7u64)
            .field("metrics", Json::obj().field("x", 1u64).field("y", 2u64));
        let b = Json::obj()
            .field("seed", 8u64)
            .field("metrics", Json::obj().field("x", 1u64).field("y", 3u64).field("z", 4u64));
        let paths = diff_leaf_paths(&a, &b, 10);
        assert_eq!(paths, ["metrics.y: 2 != 3", "metrics.z: <missing> != 4", "seed: 7 != 8"]);
        assert_eq!(diff_leaf_paths(&a, &b, 1).len(), 1, "cap respected");
        let xa = Json::obj().field("rows", Json::Arr(vec![Json::from(1u64), Json::from(2u64)]));
        let xb = Json::obj().field("rows", Json::Arr(vec![Json::from(1u64)]));
        assert_eq!(diff_leaf_paths(&xa, &xb, 10), ["rows[1]: 2 != <missing>"]);
    }

    #[test]
    fn timing_table_lists_phases() {
        let reg = Registry::enabled();
        {
            let _g = reg.span("outer");
            let _h = reg.span("inner");
        }
        let table = timing_table(&reg).expect("spans recorded");
        assert!(table.contains("outer"));
        assert!(table.contains("outer/inner"));
        assert!(timing_table(&Registry::disabled()).is_none());
    }
}
