//! Divergence bisection over determinism audit trails.
//!
//! `experiments divergence <a.digest.json> <b.digest.json>` compares two
//! runs' chained digests and, when they disagree, localizes the *first*
//! diverging event:
//!
//! 1. compare run-level chains — identical chains end the search;
//! 2. find the first absorb-order segment (simulation) whose chain differs;
//! 3. binary-search that segment's periodic checkpoints for the first
//!    checkpoint where the chains disagree — the divergence lies in the
//!    window between the last agreeing checkpoint and that one;
//! 4. re-run both recorded scenarios serially with a digest-window trap
//!    over exactly that window, then zip the trapped folds to the first
//!    index whose chain-after differs.
//!
//! The re-run is possible because `<figure>.digest.json` records the
//! scenario identity (figure, scale, checkpoint stride, perturbation), and
//! the simulator is deterministic in that identity. The diverging run's
//! registry gets a `digest_divergence` control span, so the flight
//! recorder writes a `control_digest_divergence` dump next to the usual
//! anomaly reports.

use crate::ctx::RunCtx;
use crate::obs_out::ObsSettings;
use crate::run_figure_ctx;
use crate::scale::Scale;
use crate::trace_out::FLIGHTREC_SUBDIR;
use cdnc_obs::{
    json, parse_chain_hex, DigestConfig, DigestSnapshot, FlightRecorder, Json, Registry, SpanKind,
    TrapEntry, TrapWindow,
};
use std::fmt::Write as _;
use std::path::Path;

/// One run's audit trail plus the scenario identity needed to re-run it,
/// as parsed back from `<figure>.digest.json`.
#[derive(Debug, Clone)]
pub struct DigestDoc {
    pub figure: String,
    pub scale: Scale,
    pub checkpoint_every: u64,
    pub perturb: Option<u64>,
    /// Run-level chain.
    pub chain: u64,
    /// Per-segment (events, chain, checkpoints as `(index, chain)`),
    /// absorb order.
    pub segments: Vec<SegmentDoc>,
}

/// One absorbed segment of a [`DigestDoc`].
#[derive(Debug, Clone)]
pub struct SegmentDoc {
    pub events: u64,
    pub chain: u64,
    /// `(fold index, chain value)` checkpoints, ascending.
    pub checkpoints: Vec<(u64, u64)>,
}

/// Parses a `.digest.json` file written by
/// [`crate::obs_out::write_figure_digest`].
pub fn load_digest_doc(path: &Path) -> Result<DigestDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let doc = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let bad = |what: &str| format!("{}: missing or malformed `{what}`", path.display());
    let figure = doc.get("figure").and_then(Json::as_str).ok_or_else(|| bad("figure"))?.to_owned();
    let scale_name = doc.get("scale").and_then(Json::as_str).ok_or_else(|| bad("scale"))?;
    let scale = Scale::parse(scale_name)
        .ok_or_else(|| format!("{}: unknown scale `{scale_name}`", path.display()))?;
    let checkpoint_every =
        doc.get("checkpoint_every").and_then(Json::as_f64).ok_or_else(|| bad("checkpoint_every"))?
            as u64;
    let perturb = match doc.get("perturb") {
        None | Some(Json::Null) => None,
        Some(v) => Some(v.as_f64().ok_or_else(|| bad("perturb"))? as u64),
    };
    let chain = doc
        .get("chain")
        .and_then(Json::as_str)
        .and_then(parse_chain_hex)
        .ok_or_else(|| bad("chain"))?;
    let Some(Json::Arr(raw_segments)) = doc.get("segments") else {
        return Err(bad("segments"));
    };
    let mut segments = Vec::with_capacity(raw_segments.len());
    for seg in raw_segments {
        let events = seg.get("events").and_then(Json::as_f64).ok_or_else(|| bad("events"))? as u64;
        let seg_chain = seg
            .get("chain")
            .and_then(Json::as_str)
            .and_then(parse_chain_hex)
            .ok_or_else(|| bad("segments[].chain"))?;
        let mut checkpoints = Vec::new();
        if let Some(Json::Arr(raw)) = seg.get("checkpoints") {
            for c in raw {
                let index =
                    c.get("index").and_then(Json::as_f64).ok_or_else(|| bad("checkpoints"))? as u64;
                let ckpt = c
                    .get("chain")
                    .and_then(Json::as_str)
                    .and_then(parse_chain_hex)
                    .ok_or_else(|| bad("checkpoints"))?;
                checkpoints.push((index, ckpt));
            }
        }
        segments.push(SegmentDoc { events, chain: seg_chain, checkpoints });
    }
    Ok(DigestDoc { figure, scale, checkpoint_every, perturb, chain, segments })
}

/// The first absorb-order segment whose recorded state differs (chain or
/// fold count), or `None` when every common segment agrees. A run with
/// extra segments diverges at the first segment the other run lacks.
pub fn first_diverging_segment(a: &DigestDoc, b: &DigestDoc) -> Option<usize> {
    let common = a.segments.len().min(b.segments.len());
    for i in 0..common {
        let (sa, sb) = (&a.segments[i], &b.segments[i]);
        if sa.chain != sb.chain || sa.events != sb.events {
            return Some(i);
        }
    }
    (a.segments.len() != b.segments.len()).then_some(common)
}

/// The local fold-index window `[lo, hi)` within segment pair `(sa, sb)`
/// that must contain the first diverging fold: checkpoints shared by both
/// runs partition the segment, the chains agree at `lo`'s checkpoint and
/// disagree at the first common checkpoint past it. `partition_point` does
/// the binary search — once chains diverge they stay diverged (the fold is
/// a chained hash), so "diverged by checkpoint k" is monotonic in k.
pub fn bisect_window(sa: &SegmentDoc, sb: &SegmentDoc) -> (u64, u64) {
    // Checkpoints shared by both runs (stride doubling keeps indexes on a
    // power-of-two grid, so a common prefix of the grids always exists).
    let mut pairs: Vec<(u64, u64, u64)> = Vec::new();
    let mut j = 0usize;
    for &(index, chain_a) in &sa.checkpoints {
        while j < sb.checkpoints.len() && sb.checkpoints[j].0 < index {
            j += 1;
        }
        if j < sb.checkpoints.len() && sb.checkpoints[j].0 == index {
            pairs.push((index, chain_a, sb.checkpoints[j].1));
        }
    }
    let pos = pairs.partition_point(|&(_, ca, cb)| ca == cb);
    let lo = if pos == 0 { 0 } else { pairs[pos - 1].0 };
    let hi = if pos < pairs.len() { pairs[pos].0 } else { sa.events.max(sb.events) };
    (lo, hi)
}

/// The exact first diverging fold, with the trapped context from both
/// re-runs.
#[derive(Debug)]
pub struct Localization {
    /// Absorb-order segment (simulation) index.
    pub segment: usize,
    /// Local (segment-relative, 0-based) fold index of the first
    /// divergence.
    pub local: u64,
    /// Run-level fold index (earlier segments' folds included).
    pub global: u64,
    /// The bisected window the trap recorded.
    pub window: (u64, u64),
    /// Trapped folds from run A within the window.
    pub entries_a: Vec<TrapEntry>,
    /// Trapped folds from run B within the window.
    pub entries_b: Vec<TrapEntry>,
    /// Set when a re-run failed to reproduce its recorded segment chain —
    /// the environment itself is non-deterministic and the localization is
    /// best-effort.
    pub rerun_mismatch: bool,
}

/// What `divergence` found.
#[derive(Debug)]
pub enum Outcome {
    /// Run-level chains (and all segments) agree.
    Identical,
    /// First diverging fold localized.
    Diverged(Box<Localization>),
}

fn rerun_with_trap(
    doc: &DigestDoc,
    trap: TrapWindow,
) -> Result<(DigestSnapshot, Registry), String> {
    let reg = Registry::enabled();
    reg.enable_tracing();
    reg.enable_digest(DigestConfig {
        checkpoint_every: doc.checkpoint_every,
        perturb: doc.perturb,
        trap: Some(trap),
    });
    run_figure_ctx(&doc.figure, RunCtx::new(doc.scale), None, &reg)
        .ok_or_else(|| format!("unknown figure id in digest doc: {}", doc.figure))?;
    let snap = reg.digest_snapshot().expect("digest armed above");
    Ok((snap, reg))
}

/// Compares two digest docs and localizes the first diverging event,
/// re-running both recorded scenarios with a trap when they disagree. The
/// diverging re-run's registry gets a `digest_divergence` control span and
/// a flight-recorder dump lands under `<trace-dir>/flightrec/`.
pub fn run(path_a: &Path, path_b: &Path, settings: &ObsSettings) -> Result<Outcome, String> {
    let a = load_digest_doc(path_a)?;
    let b = load_digest_doc(path_b)?;
    if a.figure != b.figure || a.scale != b.scale {
        return Err(format!(
            "digest docs describe different scenarios: {} @ {} vs {} @ {}",
            a.figure,
            a.scale.arg_name(),
            b.figure,
            b.scale.arg_name()
        ));
    }
    if a.checkpoint_every != b.checkpoint_every {
        return Err(format!(
            "digest docs use different checkpoint strides ({} vs {}) — re-record one run",
            a.checkpoint_every, b.checkpoint_every
        ));
    }
    let Some(segment) = first_diverging_segment(&a, &b) else {
        return Ok(Outcome::Identical);
    };
    if segment >= a.segments.len().min(b.segments.len()) {
        return Err(format!(
            "runs absorbed different segment counts ({} vs {}) — structural difference, \
             not an event-level divergence",
            a.segments.len(),
            b.segments.len()
        ));
    }
    let (lo, hi) = bisect_window(&a.segments[segment], &b.segments[segment]);
    let trap = TrapWindow { segment, lo, hi };
    let (snap_a, _reg_a) = rerun_with_trap(&a, trap)?;
    let (snap_b, reg_b) = rerun_with_trap(&b, trap)?;
    let rerun_mismatch = snap_a.segments.get(segment).map(|s| s.chain)
        != Some(a.segments[segment].chain)
        || snap_b.segments.get(segment).map(|s| s.chain) != Some(b.segments[segment].chain);
    // First trapped index whose chain-after differs (or present on one side
    // only): both traps cover the same window, so zip by position.
    let mut local = None;
    let max_len = snap_a.trap.len().max(snap_b.trap.len());
    for i in 0..max_len {
        match (snap_a.trap.get(i), snap_b.trap.get(i)) {
            (Some(ea), Some(eb)) if ea.after == eb.after => continue,
            (Some(ea), _) => {
                local = Some(ea.index);
                break;
            }
            (None, Some(eb)) => {
                local = Some(eb.index);
                break;
            }
            (None, None) => break,
        }
    }
    let local = local.ok_or_else(|| {
        format!(
            "checkpoint window [{lo}, {hi}) of segment {segment} re-ran clean — the recorded \
             divergence did not reproduce (non-deterministic environment?)"
        )
    })?;
    let global = snap_b.global_index(segment, local);
    // Flag the diverging fold for the flight recorder on the re-run's
    // registry: one control span at the event's node and sim-time.
    let at = snap_b
        .trap
        .iter()
        .find(|e| e.index == local)
        .or(snap_a.trap.iter().find(|e| e.index == local));
    if let Some(entry) = at {
        reg_b.tracer().control(SpanKind::DigestDivergence, entry.node, entry.t_us, "bisect");
        let store = reg_b.tracer().store();
        let reports = FlightRecorder::new(settings.trace_threshold_s).scan(&store);
        let flight_dir = settings.trace_dir().join(FLIGHTREC_SUBDIR);
        for report in reports.iter().filter(|r| r.file_stem().contains("digest_divergence")) {
            if std::fs::create_dir_all(&flight_dir).is_ok() {
                let dump = flight_dir.join(format!("{}_{}.json", a.figure, report.file_stem()));
                let _ = std::fs::write(dump, report.to_json().to_pretty());
            }
        }
    }
    Ok(Outcome::Diverged(Box::new(Localization {
        segment,
        local,
        global,
        window: (lo, hi),
        entries_a: snap_a.trap,
        entries_b: snap_b.trap,
        rerun_mismatch,
    })))
}

/// How many trapped folds to print on each side of the divergence.
const CONTEXT: u64 = 5;

fn entry_line(entry: Option<&TrapEntry>) -> String {
    match entry {
        Some(e) => format!(
            "{:<18} node {:>5}  t {:>12} µs  chain {}",
            e.label,
            e.node,
            e.t_us,
            cdnc_obs::chain_hex(e.after)
        ),
        None => "<no fold>".to_owned(),
    }
}

impl Localization {
    /// The human rendering: the headline index (the line CI greps for)
    /// followed by the context window from both runs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "first diverging event: global index {} (segment {}, local index {})",
            self.global, self.segment, self.local
        );
        let _ = writeln!(
            out,
            "checkpoint window: [{}, {}) of segment {}",
            self.window.0, self.window.1, self.segment
        );
        if self.rerun_mismatch {
            let _ = writeln!(
                out,
                "warning: a re-run did not reproduce its recorded chain — localization is \
                 best-effort"
            );
        }
        let from = self.local.saturating_sub(CONTEXT).max(self.window.0);
        let to = (self.local + CONTEXT + 1).min(self.window.1);
        let find = |entries: &[TrapEntry], index: u64| -> Option<TrapEntry> {
            entries.iter().find(|e| e.index == index).cloned()
        };
        for index in from..to {
            let ea = find(&self.entries_a, index);
            let eb = find(&self.entries_b, index);
            let marker = if index == self.local { ">>" } else { "  " };
            let _ = writeln!(out, "{marker} [{index}] A: {}", entry_line(ea.as_ref()));
            if ea.as_ref().map(|e| (e.label, e.node, e.t_us, e.after))
                == eb.as_ref().map(|e| (e.label, e.node, e.t_us, e.after))
            {
                let _ = writeln!(out, "{marker}       B: (identical)");
            } else {
                let _ = writeln!(out, "{marker}       B: {}", entry_line(eb.as_ref()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(events: u64, chain: u64, checkpoints: &[(u64, u64)]) -> SegmentDoc {
        SegmentDoc { events, chain, checkpoints: checkpoints.to_vec() }
    }

    #[test]
    fn segment_scan_finds_first_difference() {
        let doc = |chains: &[u64]| DigestDoc {
            figure: "fig14".into(),
            scale: Scale::Smoke,
            checkpoint_every: 64,
            perturb: None,
            chain: 1,
            segments: chains.iter().map(|&c| seg(100, c, &[])).collect(),
        };
        let a = doc(&[10, 20, 30]);
        assert_eq!(first_diverging_segment(&a, &doc(&[10, 20, 30])), None);
        assert_eq!(first_diverging_segment(&a, &doc(&[10, 99, 30])), Some(1));
        assert_eq!(first_diverging_segment(&a, &doc(&[10, 20])), Some(2));
    }

    #[test]
    fn bisect_brackets_the_diverging_checkpoint() {
        let a = seg(300, 1, &[(64, 5), (128, 6), (192, 7), (256, 8)]);
        let b = seg(300, 2, &[(64, 5), (128, 6), (192, 9), (256, 10)]);
        assert_eq!(bisect_window(&a, &b), (128, 192));
        // Divergence before the first checkpoint.
        let c = seg(300, 2, &[(64, 99), (128, 98), (192, 97), (256, 96)]);
        assert_eq!(bisect_window(&a, &c), (0, 64));
        // Divergence past the last checkpoint: window runs to segment end.
        let d = seg(300, 2, &[(64, 5), (128, 6), (192, 7), (256, 8)]);
        assert_eq!(bisect_window(&a, &d), (256, 300));
        // Stride doubling on one side: only the shared grid is used.
        let e = seg(300, 2, &[(128, 6), (256, 11)]);
        assert_eq!(bisect_window(&a, &e), (128, 256));
    }

    #[test]
    fn docs_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("cdnc-divergence-doc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = Registry::enabled();
        reg.enable_digest(DigestConfig { checkpoint_every: 2, perturb: Some(9), trap: None });
        for i in 0..5 {
            reg.digest().fold("probe", 1, i * 10, &[i]);
        }
        let path = crate::obs_out::write_figure_digest(&dir, "fig14", Scale::Smoke, &reg)
            .unwrap()
            .expect("digest armed");
        let doc = load_digest_doc(&path).expect("parses");
        assert_eq!(doc.figure, "fig14");
        assert_eq!(doc.scale, Scale::Smoke);
        assert_eq!(doc.checkpoint_every, 2);
        assert_eq!(doc.perturb, Some(9));
        let snap = reg.digest_snapshot().unwrap();
        assert_eq!(doc.chain, snap.chain);
        assert_eq!(doc.segments.len(), snap.segments.len());
        assert_eq!(doc.segments[0].events, 5);
        assert_eq!(doc.segments[0].checkpoints.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_scenarios_are_rejected() {
        let dir = std::env::temp_dir().join(format!("cdnc-divergence-mix-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let write = |id: &str| {
            let reg = Registry::enabled();
            reg.enable_digest(DigestConfig::default());
            reg.digest().fold("probe", 1, 10, &[]);
            crate::obs_out::write_figure_digest(&dir, id, Scale::Smoke, &reg).unwrap().unwrap()
        };
        let a = write("fig14");
        let b = write("fig15");
        let err = run(&a, &b, &ObsSettings::off()).unwrap_err();
        assert!(err.contains("different scenarios"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
