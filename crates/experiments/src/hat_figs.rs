//! Reproductions of the HAT evaluation figures (paper §5.3, Figs. 22–24).

use crate::ctx::RunCtx;
use crate::eval_figs::{run_batch_on, section4_updates_for};
use crate::report::FigureReport;
use cdnc_core::{Scheme, SimConfig};
use cdnc_obs::Registry;
use cdnc_simcore::SimDuration;

fn section5_config(ctx: RunCtx, scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::section5(scheme, section4_updates_for(ctx));
    cfg.servers = ctx.scale.section5_servers();
    cfg.seed = ctx.seed(cfg.seed);
    cfg
}

/// Fig. 22(a): number of update messages to content servers vs end-user TTL,
/// for the six §5 systems.
pub fn fig22a(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new("fig22a", "Update messages to servers vs end-user TTL");
    let lineup = Scheme::section5_lineup();
    let user_ttls = ctx.scale.user_ttl_sweep_s();
    let mut configs = Vec::new();
    for &ttl in &user_ttls {
        for scheme in lineup {
            let mut cfg = section5_config(ctx, scheme);
            cfg.user_ttl = SimDuration::from_secs(ttl);
            configs.push(cfg);
        }
    }
    let reports = run_batch_on(configs, obs, &ctx.pool);
    for (i, chunk) in reports.chunks(lineup.len()).enumerate() {
        let ttl = user_ttls[i];
        let cells: Vec<String> = chunk
            .iter()
            .map(|r| format!("{}={}", r.scheme_label, r.server_update_messages))
            .collect();
        report.row(format!("  user TTL={ttl:>3}s  {}", cells.join("  ")));
        for r in chunk {
            report.keyval(
                format!("{}_updates_uttl{ttl}", r.scheme_label),
                r.server_update_messages as f64,
            );
        }
    }
    report
}

/// Fig. 22(b): number of update messages sent by the content provider vs
/// content-server TTL.
pub fn fig22b(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new("fig22b", "Update messages from the provider vs server TTL");
    let lineup = Scheme::section5_lineup();
    let server_ttls = ctx.scale.server_ttl_sweep_s();
    let mut configs = Vec::new();
    for &ttl in &server_ttls {
        for scheme in lineup {
            let mut cfg = section5_config(ctx, scheme);
            cfg.server_ttl = SimDuration::from_secs(ttl);
            configs.push(cfg);
        }
    }
    let reports = run_batch_on(configs, obs, &ctx.pool);
    for (i, chunk) in reports.chunks(lineup.len()).enumerate() {
        let ttl = server_ttls[i];
        let cells: Vec<String> = chunk
            .iter()
            .map(|r| format!("{}={}", r.scheme_label, r.provider_update_messages))
            .collect();
        report.row(format!("  server TTL={ttl:>3}s  {}", cells.join("  ")));
        for r in chunk {
            report.keyval(
                format!("{}_provider_updates_sttl{ttl}", r.scheme_label),
                r.provider_update_messages as f64,
            );
        }
    }
    report
}

/// Fig. 23: consistency-maintenance network load (km), split into update
/// and light messages, for the six systems.
pub fn fig23(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report = FigureReport::new("fig23", "Network load (km): update vs light messages");
    let lineup = Scheme::section5_lineup();
    let reports =
        run_batch_on(lineup.iter().map(|&s| section5_config(ctx, s)).collect(), obs, &ctx.pool);
    for r in &reports {
        report.row(format!(
            "  {:<13} update = {:>12.3e} km   light = {:>12.3e} km   total = {:>12.3e} km   inter-ISP share = {:>5.1}%",
            r.scheme_label,
            r.traffic.update_km(),
            r.traffic.light_km(),
            r.traffic.update_km() + r.traffic.light_km(),
            100.0 * r.traffic.inter_isp_fraction()
        ));
        report.keyval(format!("{}_update_km", r.scheme_label), r.traffic.update_km());
        report.keyval(format!("{}_light_km", r.scheme_label), r.traffic.light_km());
        report.keyval(
            format!("{}_total_km", r.scheme_label),
            r.traffic.update_km() + r.traffic.light_km(),
        );
        report.keyval(
            format!("{}_inter_isp_fraction", r.scheme_label),
            r.traffic.inter_isp_fraction(),
        );
    }
    report
}

/// Fig. 24: percentage of user observations that were inconsistent, vs
/// end-user TTL, under the roaming-user scenario.
pub fn fig24(ctx: RunCtx, obs: &Registry) -> FigureReport {
    let mut report =
        FigureReport::new("fig24", "% inconsistency observations vs end-user TTL (roaming)");
    let lineup = Scheme::section5_lineup();
    let user_ttls = ctx.scale.user_ttl_sweep_s();
    let mut configs = Vec::new();
    for &ttl in &user_ttls {
        for scheme in lineup {
            let mut cfg = section5_config(ctx, scheme);
            cfg.user_ttl = SimDuration::from_secs(ttl);
            cfg.users_roam = true;
            configs.push(cfg);
        }
    }
    let reports = run_batch_on(configs, obs, &ctx.pool);
    for (i, chunk) in reports.chunks(lineup.len()).enumerate() {
        let ttl = user_ttls[i];
        let cells: Vec<String> = chunk
            .iter()
            .map(|r| {
                format!("{}={:.4}%", r.scheme_label, 100.0 * r.inconsistency_observation_rate())
            })
            .collect();
        report.row(format!("  user TTL={ttl:>3}s  {}", cells.join("  ")));
        for r in chunk {
            report.keyval(
                format!("{}_obs_rate_uttl{ttl}", r.scheme_label),
                r.inconsistency_observation_rate(),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn fig22a_ordering_matches_paper() {
        // Paper: Push > Invalidation > Hybrid ≈ TTL > HAT > Self.
        let r = fig22a(RunCtx::new(Scale::Smoke), &Registry::disabled());
        let at = |name: &str| r.value(&format!("{name}_updates_uttl10")).unwrap();
        assert!(at("Push") > at("Invalidation"), "Push > Invalidation");
        assert!(at("Invalidation") > at("TTL"), "Invalidation > TTL");
        assert!(at("TTL") > at("Self"), "TTL > Self");
        assert!(at("HAT") >= at("Self"), "HAT ≥ Self (push to supernodes)");
    }

    #[test]
    fn fig22b_hybrid_lightens_provider() {
        let r = fig22b(RunCtx::new(Scale::Smoke), &Registry::disabled());
        let at = |name: &str| r.value(&format!("{name}_provider_updates_sttl60")).unwrap();
        assert!(at("HAT") < at("TTL") / 4.0, "HAT {} ≪ TTL {}", at("HAT"), at("TTL"));
        assert!(at("Hybrid") < at("Push") / 4.0, "Hybrid ≪ Push");
    }

    #[test]
    fn fig24_push_never_shows_regressions() {
        let r = fig24(RunCtx::new(Scale::Smoke), &Registry::disabled());
        let push = r.value("Push_obs_rate_uttl10").unwrap();
        let ttl = r.value("TTL_obs_rate_uttl10").unwrap();
        assert!(push <= ttl, "push rate {push} must not exceed ttl {ttl}");
        assert!(ttl > 0.0, "roaming TTL users must observe regressions");
    }
}
