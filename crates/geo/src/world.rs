//! World generation: placing CDN nodes in real metro areas.
//!
//! The paper's evaluation (§4) selects "170 PlanetLab nodes ... mainly in the
//! U.S., Europe, and Asia" with the content provider in Atlanta, and the
//! measurement (§3) crawls ~3000 servers distributed worldwide. This module
//! generates such placements deterministically: nodes are assigned to a city
//! from a fixed catalog (weighted by region mix), jittered inside the metro
//! area, and given an ISP from the city's serving set.

use crate::point::GeoPoint;
use cdnc_simcore::SimRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an ISP (autonomous system) in the generated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IspId(pub u16);

impl fmt::Display for IspId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "isp{}", self.0)
    }
}

/// Continental region of a node — the paper's node mix is specified at this
/// granularity ("mainly in the U.S., Europe, and Asia").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Region {
    /// United States and Canada.
    NorthAmerica,
    /// Europe.
    Europe,
    /// East and South Asia.
    Asia,
    /// South America.
    SouthAmerica,
    /// Australia / New Zealand.
    Oceania,
}

impl Region {
    /// All regions in catalog order.
    pub const ALL: [Region; 5] =
        [Region::NorthAmerica, Region::Europe, Region::Asia, Region::SouthAmerica, Region::Oceania];
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::NorthAmerica => "north-america",
            Region::Europe => "europe",
            Region::Asia => "asia",
            Region::SouthAmerica => "south-america",
            Region::Oceania => "oceania",
        };
        f.write_str(s)
    }
}

/// A metro area in the catalog.
#[derive(Debug, Clone, Copy)]
struct City {
    name: &'static str,
    lat: f64,
    lon: f64,
    region: Region,
}

/// Catalog of metro areas used for placement. Coordinates are city centres.
const CITIES: &[City] = &[
    // North America
    City { name: "Atlanta", lat: 33.749, lon: -84.388, region: Region::NorthAmerica },
    City { name: "New York", lat: 40.713, lon: -74.006, region: Region::NorthAmerica },
    City { name: "Chicago", lat: 41.878, lon: -87.630, region: Region::NorthAmerica },
    City { name: "Dallas", lat: 32.777, lon: -96.797, region: Region::NorthAmerica },
    City { name: "Los Angeles", lat: 34.052, lon: -118.244, region: Region::NorthAmerica },
    City { name: "San Jose", lat: 37.338, lon: -121.886, region: Region::NorthAmerica },
    City { name: "Seattle", lat: 47.606, lon: -122.332, region: Region::NorthAmerica },
    City { name: "Miami", lat: 25.762, lon: -80.192, region: Region::NorthAmerica },
    City { name: "Denver", lat: 39.739, lon: -104.990, region: Region::NorthAmerica },
    City { name: "Detroit", lat: 42.331, lon: -83.046, region: Region::NorthAmerica },
    City { name: "Toronto", lat: 43.651, lon: -79.347, region: Region::NorthAmerica },
    City { name: "Washington DC", lat: 38.907, lon: -77.037, region: Region::NorthAmerica },
    // Europe
    City { name: "London", lat: 51.507, lon: -0.128, region: Region::Europe },
    City { name: "Paris", lat: 48.857, lon: 2.352, region: Region::Europe },
    City { name: "Frankfurt", lat: 50.110, lon: 8.682, region: Region::Europe },
    City { name: "Amsterdam", lat: 52.368, lon: 4.904, region: Region::Europe },
    City { name: "Madrid", lat: 40.417, lon: -3.704, region: Region::Europe },
    City { name: "Milan", lat: 45.464, lon: 9.190, region: Region::Europe },
    City { name: "Stockholm", lat: 59.329, lon: 18.069, region: Region::Europe },
    City { name: "Warsaw", lat: 52.230, lon: 21.012, region: Region::Europe },
    City { name: "Zurich", lat: 47.377, lon: 8.541, region: Region::Europe },
    City { name: "Dublin", lat: 53.349, lon: -6.260, region: Region::Europe },
    // Asia
    City { name: "Tokyo", lat: 35.690, lon: 139.692, region: Region::Asia },
    City { name: "Osaka", lat: 34.694, lon: 135.502, region: Region::Asia },
    City { name: "Seoul", lat: 37.566, lon: 126.978, region: Region::Asia },
    City { name: "Hong Kong", lat: 22.319, lon: 114.169, region: Region::Asia },
    City { name: "Singapore", lat: 1.352, lon: 103.820, region: Region::Asia },
    City { name: "Taipei", lat: 25.033, lon: 121.565, region: Region::Asia },
    City { name: "Mumbai", lat: 19.076, lon: 72.878, region: Region::Asia },
    City { name: "Beijing", lat: 39.904, lon: 116.407, region: Region::Asia },
    City { name: "Shanghai", lat: 31.230, lon: 121.474, region: Region::Asia },
    // South America
    City { name: "Sao Paulo", lat: -23.551, lon: -46.633, region: Region::SouthAmerica },
    City { name: "Buenos Aires", lat: -34.604, lon: -58.382, region: Region::SouthAmerica },
    City { name: "Santiago", lat: -33.449, lon: -70.669, region: Region::SouthAmerica },
    // Oceania
    City { name: "Sydney", lat: -33.869, lon: 151.209, region: Region::Oceania },
    City { name: "Auckland", lat: -36.848, lon: 174.763, region: Region::Oceania },
];

/// Number of distinct ISPs assigned per region.
const ISPS_PER_REGION: u16 = 12;
/// Number of ISPs serving each city.
const ISPS_PER_CITY: usize = 3;

/// A generated node placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldNode {
    /// Position (jittered inside the metro area).
    pub location: GeoPoint,
    /// Metro area name from the catalog.
    pub city: String,
    /// Continental region.
    pub region: Region,
    /// Serving ISP.
    pub isp: IspId,
}

/// A deterministic placement of CDN nodes across the city catalog.
///
/// # Examples
///
/// ```
/// use cdnc_geo::WorldBuilder;
///
/// let world = WorldBuilder::new(170).seed(42).build();
/// assert_eq!(world.nodes().len(), 170);
/// // Same seed, same world.
/// assert_eq!(world, WorldBuilder::new(170).seed(42).build());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct World {
    nodes: Vec<WorldNode>,
    provider: GeoPoint,
}

impl World {
    /// The generated nodes.
    pub fn nodes(&self) -> &[WorldNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the world has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Where the content provider sits (paper §4: one node in Atlanta).
    pub fn provider_location(&self) -> GeoPoint {
        self.provider
    }

    /// Distinct ISPs present among the nodes, sorted.
    pub fn isps(&self) -> Vec<IspId> {
        let mut isps: Vec<IspId> = self.nodes.iter().map(|n| n.isp).collect();
        isps.sort_unstable();
        isps.dedup();
        isps
    }
}

/// Builder for [`World`].
#[derive(Debug, Clone)]
pub struct WorldBuilder {
    count: usize,
    seed: u64,
    region_weights: [f64; 5],
    metro_jitter_km: f64,
}

impl WorldBuilder {
    /// Starts a builder for a world of `count` nodes with the paper's §4
    /// region mix (mainly US, Europe and Asia).
    pub fn new(count: usize) -> Self {
        WorldBuilder {
            count,
            seed: 0,
            // US : EU : Asia : SA : Oceania — "mainly in the U.S., Europe, and Asia".
            region_weights: [0.45, 0.27, 0.22, 0.03, 0.03],
            metro_jitter_km: 25.0,
        }
    }

    /// Sets the random seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the relative weight of each region, in [`Region::ALL`]
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or all are zero (checked at build).
    pub fn region_weights(mut self, weights: [f64; 5]) -> Self {
        self.region_weights = weights;
        self
    }

    /// Sets how far nodes may be jittered from the city centre (km).
    pub fn metro_jitter_km(mut self, km: f64) -> Self {
        self.metro_jitter_km = km;
        self
    }

    /// Generates the world.
    ///
    /// # Panics
    ///
    /// Panics if the region weights are invalid (negative or all-zero).
    pub fn build(&self) -> World {
        let mut rng = SimRng::seed_from_u64(self.seed ^ 0x57_4f_52_4c_44); // "WORLD"
        let mut nodes = Vec::with_capacity(self.count);
        for _ in 0..self.count {
            let region = Region::ALL[rng.weighted_index(&self.region_weights)];
            let cities: Vec<&City> = CITIES.iter().filter(|c| c.region == region).collect();
            let city = *rng.choose(&cities);
            let centre = GeoPoint::new(city.lat, city.lon).expect("catalog coordinates valid");
            let j = self.metro_jitter_km;
            let location = centre.displaced_km(rng.uniform_range(-j, j), rng.uniform_range(-j, j));
            let isp = city_isp(city, rng.index(ISPS_PER_CITY));
            nodes.push(WorldNode { location, city: city.name.to_owned(), region, isp });
        }
        let provider = GeoPoint::new(33.749, -84.388).expect("Atlanta coordinates valid");
        World { nodes, provider }
    }
}

/// Deterministically picks the `k`-th ISP serving `city` from its region's
/// pool.
fn city_isp(city: &City, k: usize) -> IspId {
    let region_base = Region::ALL.iter().position(|r| *r == city.region).expect("region in ALL")
        as u16
        * ISPS_PER_REGION;
    // Stable per-city offset derived from the name.
    let h: u32 =
        city.name.bytes().fold(2166136261u32, |acc, b| (acc ^ b as u32).wrapping_mul(16777619));
    let offset = (h as u16).wrapping_add(k as u16 * 7) % ISPS_PER_REGION;
    IspId(region_base + offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn build_is_deterministic() {
        let a = WorldBuilder::new(300).seed(7).build();
        let b = WorldBuilder::new(300).seed(7).build();
        assert_eq!(a, b);
        let c = WorldBuilder::new(300).seed(8).build();
        assert_ne!(a, c);
    }

    #[test]
    fn region_mix_roughly_matches_weights() {
        let world = WorldBuilder::new(5_000).seed(1).build();
        let us = world.nodes().iter().filter(|n| n.region == Region::NorthAmerica).count();
        let eu = world.nodes().iter().filter(|n| n.region == Region::Europe).count();
        let asia = world.nodes().iter().filter(|n| n.region == Region::Asia).count();
        assert!((0.40..0.50).contains(&(us as f64 / 5_000.0)), "US share {us}");
        assert!((0.22..0.32).contains(&(eu as f64 / 5_000.0)), "EU share {eu}");
        assert!((0.17..0.27).contains(&(asia as f64 / 5_000.0)), "Asia share {asia}");
    }

    #[test]
    fn nodes_stay_near_their_city() {
        let world = WorldBuilder::new(500).seed(3).build();
        for node in world.nodes() {
            let city = CITIES.iter().find(|c| c.name == node.city).expect("city in catalog");
            let centre = GeoPoint::new(city.lat, city.lon).unwrap();
            let d = node.location.distance_km(&centre);
            assert!(d <= 40.0, "{} is {d} km from {}", node.location, node.city);
        }
    }

    #[test]
    fn isps_are_region_scoped() {
        let world = WorldBuilder::new(2_000).seed(5).build();
        for node in world.nodes() {
            let region_index = Region::ALL.iter().position(|r| *r == node.region).unwrap() as u16;
            let base = region_index * ISPS_PER_REGION;
            assert!(
                (base..base + ISPS_PER_REGION).contains(&node.isp.0),
                "{:?} has out-of-region ISP {}",
                node.region,
                node.isp
            );
        }
    }

    #[test]
    fn multiple_isps_exist() {
        let world = WorldBuilder::new(1_000).seed(2).build();
        assert!(world.isps().len() >= 10, "expected a diverse ISP set");
    }

    #[test]
    fn provider_is_in_atlanta() {
        let world = WorldBuilder::new(10).seed(0).build();
        let atlanta = GeoPoint::new(33.749, -84.388).unwrap();
        assert!(world.provider_location().distance_km(&atlanta) < 1.0);
    }

    #[test]
    fn city_isp_is_stable() {
        let city = &CITIES[0];
        let a = city_isp(city, 1);
        let b = city_isp(city, 1);
        assert_eq!(a, b);
        let ks: HashSet<IspId> = (0..ISPS_PER_CITY).map(|k| city_isp(city, k)).collect();
        assert!(ks.len() >= 2, "a city should be served by multiple ISPs");
    }

    #[test]
    fn custom_region_weights() {
        let world =
            WorldBuilder::new(200).seed(9).region_weights([0.0, 1.0, 0.0, 0.0, 0.0]).build();
        assert!(world.nodes().iter().all(|n| n.region == Region::Europe));
    }

    #[test]
    fn empty_world() {
        let world = WorldBuilder::new(0).build();
        assert!(world.is_empty());
        assert_eq!(world.len(), 0);
        assert!(world.isps().is_empty());
    }
}
