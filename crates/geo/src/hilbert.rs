//! Hilbert space-filling-curve linearisation.
//!
//! HAT (paper §5.2, following reference \[39\] which uses the Hilbert curve of
//! \[44\]) converts the two geographic dimensions (longitude, latitude) into a
//! single *Hilbert number*; physically close nodes receive similar numbers,
//! so sorting by Hilbert number and chunking yields proximity-aware clusters.

use crate::point::GeoPoint;

/// Default curve order used for geographic clustering (2^16 × 2^16 grid —
/// ≈ 600 m of longitude resolution at the equator).
pub const DEFAULT_ORDER: u32 = 16;

/// Maps grid cell `(x, y)` on a `2^order × 2^order` grid to its distance
/// along the Hilbert curve.
///
/// # Panics
///
/// Panics if `order` is 0 or greater than 31, or if `x`/`y` fall outside the
/// grid.
///
/// # Examples
///
/// ```
/// use cdnc_geo::hilbert::xy_to_hilbert;
///
/// // First-order curve visits (0,0) -> (0,1) -> (1,1) -> (1,0).
/// assert_eq!(xy_to_hilbert(1, 0, 0), 0);
/// assert_eq!(xy_to_hilbert(1, 0, 1), 1);
/// assert_eq!(xy_to_hilbert(1, 1, 1), 2);
/// assert_eq!(xy_to_hilbert(1, 1, 0), 3);
/// ```
pub fn xy_to_hilbert(order: u32, mut x: u64, mut y: u64) -> u64 {
    assert!((1..=31).contains(&order), "order out of range: {order}");
    let n: u64 = 1 << order;
    assert!(x < n && y < n, "({x}, {y}) outside 2^{order} grid");
    let mut rx;
    let mut ry;
    let mut d: u64 = 0;
    let mut s = n / 2;
    while s > 0 {
        rx = u64::from((x & s) > 0);
        ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate quadrant (reflection is across the full grid here; the
        // inverse transform reflects across the sub-quadrant instead).
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Inverse of [`xy_to_hilbert`]: maps a distance along the curve back to the
/// grid cell it occupies.
///
/// # Panics
///
/// Panics if `order` is out of range or `d >= 4^order`.
pub fn hilbert_to_xy(order: u32, d: u64) -> (u64, u64) {
    assert!((1..=31).contains(&order), "order out of range: {order}");
    let n: u64 = 1 << order;
    assert!(d < n * n, "distance {d} beyond curve of order {order}");
    let (mut x, mut y) = (0u64, 0u64);
    let mut t = d;
    let mut s = 1u64;
    while s < n {
        let rx = (t / 2) & 1;
        let ry = (t ^ rx) & 1;
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x, y)
}

/// The Hilbert number of a geographic point on the default-order curve.
///
/// Longitude maps to the x axis and latitude to the y axis, matching the
/// "two dimensions (longitude and latitude) to real numbers" construction in
/// the paper's reference \[39\].
pub fn hilbert_index(point: &GeoPoint) -> u64 {
    hilbert_index_with_order(point, DEFAULT_ORDER)
}

/// The Hilbert number of a geographic point on a curve of the given order.
///
/// # Panics
///
/// Panics if `order` is 0 or greater than 31.
pub fn hilbert_index_with_order(point: &GeoPoint, order: u32) -> u64 {
    let n = (1u64 << order) as f64;
    let x = ((point.lon_deg() + 180.0) / 360.0 * n).min(n - 1.0).max(0.0) as u64;
    let y = ((point.lat_deg() + 90.0) / 180.0 * n).min(n - 1.0).max(0.0) as u64;
    xy_to_hilbert(order, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_order_curve_shape() {
        assert_eq!(hilbert_to_xy(1, 0), (0, 0));
        assert_eq!(hilbert_to_xy(1, 1), (0, 1));
        assert_eq!(hilbert_to_xy(1, 2), (1, 1));
        assert_eq!(hilbert_to_xy(1, 3), (1, 0));
    }

    #[test]
    fn roundtrip_small_orders() {
        for order in 1..=6 {
            let n: u64 = 1 << order;
            for d in 0..n * n {
                let (x, y) = hilbert_to_xy(order, d);
                assert_eq!(xy_to_hilbert(order, x, y), d, "order {order}, d {d}");
            }
        }
    }

    #[test]
    fn curve_is_continuous() {
        // Consecutive curve positions are adjacent grid cells (Manhattan
        // distance exactly 1) — the defining locality property.
        let order = 5;
        let n: u64 = 1 << order;
        for d in 0..n * n - 1 {
            let (x1, y1) = hilbert_to_xy(order, d);
            let (x2, y2) = hilbert_to_xy(order, d + 1);
            let dist = x1.abs_diff(x2) + y1.abs_diff(y2);
            assert_eq!(dist, 1, "jump between d={d} and d={}", d + 1);
        }
    }

    #[test]
    fn nearby_points_have_nearby_indices() {
        let a = GeoPoint::new(33.75, -84.39).unwrap();
        let b = GeoPoint::new(33.76, -84.38).unwrap(); // ~1.4 km away
        let far = GeoPoint::new(35.68, 139.69).unwrap(); // Tokyo
        let da = hilbert_index(&a);
        let db = hilbert_index(&b);
        let df = hilbert_index(&far);
        assert!(da.abs_diff(db) < da.abs_diff(df));
    }

    #[test]
    fn extreme_coordinates_stay_on_grid() {
        for (lat, lon) in [(90.0, 180.0), (-90.0, -180.0), (0.0, 0.0), (90.0, -180.0)] {
            let p = GeoPoint::new(lat, lon).unwrap();
            let _ = hilbert_index(&p); // must not panic
        }
    }

    #[test]
    #[should_panic(expected = "order out of range")]
    fn order_zero_rejected() {
        xy_to_hilbert(0, 0, 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn off_grid_rejected() {
        xy_to_hilbert(2, 4, 0);
    }

    proptest! {
        /// xy -> d -> xy round-trips at the default geographic order.
        #[test]
        fn prop_roundtrip_default_order(x in 0u64..(1 << DEFAULT_ORDER), y in 0u64..(1 << DEFAULT_ORDER)) {
            let d = xy_to_hilbert(DEFAULT_ORDER, x, y);
            prop_assert_eq!(hilbert_to_xy(DEFAULT_ORDER, d), (x, y));
        }

        /// The index is within the curve length.
        #[test]
        fn prop_index_bounded(lat in -90.0f64..=90.0, lon in -180.0f64..=180.0) {
            let p = GeoPoint::new(lat, lon).unwrap();
            let d = hilbert_index(&p);
            prop_assert!(d < (1u64 << DEFAULT_ORDER) * (1u64 << DEFAULT_ORDER));
        }
    }
}
