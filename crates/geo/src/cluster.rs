//! Clustering utilities.
//!
//! Three clusterings appear in the paper:
//!
//! * **collocation clusters** (§3.4.1): servers with the same geolocated
//!   coordinates are grouped to isolate the TTL effect from propagation
//!   delay — [`cluster_by_location`];
//! * **ISP clusters** (§3.4.3): servers grouped by serving ISP to compare
//!   intra- vs inter-ISP inconsistency — trivially a group-by on
//!   [`IspId`](crate::IspId), provided here as [`cluster_by_key`];
//! * **Hilbert clusters** (§5.2): HAT's proximity clusters built by sorting
//!   servers by Hilbert number and chunking — [`cluster_by_hilbert`].

use crate::hilbert::hilbert_index;
use crate::point::GeoPoint;
use std::collections::BTreeMap;
use std::hash::Hash;

/// A cluster of item indices (indices into whatever slice was clustered).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cluster {
    /// Indices of the clustered items, in input order.
    pub members: Vec<usize>,
}

impl Cluster {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Groups points that share a coarse location key (coordinates rounded to
/// `decimals` places). Returns clusters in ascending key order, so output is
/// deterministic.
///
/// # Examples
///
/// ```
/// use cdnc_geo::{cluster_by_location, GeoPoint};
///
/// let points = [
///     GeoPoint::new(33.7491, -84.3881).unwrap(),
///     GeoPoint::new(33.7492, -84.3882).unwrap(),
///     GeoPoint::new(51.5070, -0.1280).unwrap(),
/// ];
/// let clusters = cluster_by_location(&points, 2);
/// assert_eq!(clusters.len(), 2);
/// ```
pub fn cluster_by_location(points: &[GeoPoint], decimals: u32) -> Vec<Cluster> {
    let mut groups: BTreeMap<(i64, i64), Cluster> = BTreeMap::new();
    for (i, p) in points.iter().enumerate() {
        groups.entry(p.location_key(decimals)).or_default().members.push(i);
    }
    groups.into_values().collect()
}

/// Groups item indices by an arbitrary key (e.g. ISP id). Returns clusters in
/// ascending key order.
pub fn cluster_by_key<T, K: Ord + Hash, F: Fn(&T) -> K>(items: &[T], key: F) -> Vec<Cluster> {
    let mut groups: BTreeMap<K, Cluster> = BTreeMap::new();
    for (i, item) in items.iter().enumerate() {
        groups.entry(key(item)).or_default().members.push(i);
    }
    groups.into_values().collect()
}

/// HAT's proximity clustering (paper §5.2): sorts points by Hilbert number
/// and splits the order into `k` contiguous, nearly equal chunks. Physically
/// close points share similar Hilbert numbers, so chunks are geographic
/// neighbourhoods.
///
/// Produces fewer than `k` clusters when there are fewer than `k` points.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn cluster_by_hilbert(points: &[GeoPoint], k: usize) -> Vec<Cluster> {
    assert!(k > 0, "cannot cluster into zero clusters");
    if points.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by_key(|&i| (hilbert_index(&points[i]), i));
    let k = k.min(points.len());
    let base = points.len() / k;
    let extra = points.len() % k;
    let mut clusters = Vec::with_capacity(k);
    let mut cursor = 0;
    for c in 0..k {
        let size = base + usize::from(c < extra);
        clusters.push(Cluster { members: order[cursor..cursor + size].to_vec() });
        cursor += size;
    }
    clusters
}

/// The member of `cluster` closest to the cluster's geographic centroid —
/// HAT's supernode choice when a deterministic pick is wanted (the paper
/// picks randomly; both are supported by callers).
///
/// Returns `None` for an empty cluster.
pub fn centroid_member(points: &[GeoPoint], cluster: &Cluster) -> Option<usize> {
    if cluster.is_empty() {
        return None;
    }
    let lat =
        cluster.members.iter().map(|&i| points[i].lat_deg()).sum::<f64>() / cluster.len() as f64;
    let lon =
        cluster.members.iter().map(|&i| points[i].lon_deg()).sum::<f64>() / cluster.len() as f64;
    let centre = GeoPoint::new(lat.clamp(-90.0, 90.0), lon.clamp(-180.0, 180.0)).ok()?;
    cluster.members.iter().copied().min_by(|&a, &b| {
        points[a]
            .distance_km(&centre)
            .partial_cmp(&points[b].distance_km(&centre))
            .expect("finite distances")
            .then(a.cmp(&b))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_simcore::SimRng;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn location_clustering_groups_collocated() {
        let points = [
            p(33.7491, -84.3881),
            p(33.7492, -84.3882),
            p(51.5070, -0.1280),
            p(51.5071, -0.1281),
            p(35.6900, 139.6920),
        ];
        let clusters = cluster_by_location(&points, 2);
        assert_eq!(clusters.len(), 3);
        let total: usize = clusters.iter().map(Cluster::len).sum();
        assert_eq!(total, points.len());
    }

    #[test]
    fn key_clustering_by_parity() {
        let items = [3u32, 1, 4, 1, 5, 9, 2, 6];
        let clusters = cluster_by_key(&items, |x| x % 2);
        assert_eq!(clusters.len(), 2);
        // Even cluster first (key 0).
        assert_eq!(clusters[0].members, vec![2, 6, 7]);
        assert_eq!(clusters[1].members, vec![0, 1, 3, 4, 5]);
    }

    #[test]
    fn hilbert_clustering_partitions_everything() {
        let mut rng = SimRng::seed_from_u64(4);
        let points: Vec<GeoPoint> = (0..137)
            .map(|_| p(rng.uniform_range(-60.0, 60.0), rng.uniform_range(-170.0, 170.0)))
            .collect();
        let clusters = cluster_by_hilbert(&points, 20);
        assert_eq!(clusters.len(), 20);
        let mut seen: Vec<usize> = clusters.iter().flat_map(|c| c.members.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..137).collect::<Vec<_>>());
        // Balanced sizes: differ by at most one.
        let sizes: Vec<usize> = clusters.iter().map(Cluster::len).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn hilbert_clusters_are_geographically_tight() {
        // Two distant metros must not share a 2-cluster split.
        let points = [
            p(33.75, -84.39),
            p(33.76, -84.38),
            p(33.74, -84.40),
            p(35.69, 139.69),
            p(35.70, 139.70),
            p(35.68, 139.68),
        ];
        let clusters = cluster_by_hilbert(&points, 2);
        for c in &clusters {
            let cities: Vec<bool> = c.members.iter().map(|&i| points[i].lon_deg() > 0.0).collect();
            assert!(
                cities.iter().all(|&x| x == cities[0]),
                "cluster mixes Atlanta and Tokyo: {:?}",
                c.members
            );
        }
    }

    #[test]
    fn more_clusters_than_points_collapses() {
        let points = [p(0.0, 0.0), p(1.0, 1.0)];
        let clusters = cluster_by_hilbert(&points, 10);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        assert!(cluster_by_hilbert(&[], 4).is_empty());
        assert!(cluster_by_location(&[], 2).is_empty());
        assert_eq!(centroid_member(&[], &Cluster::default()), None);
    }

    #[test]
    fn centroid_member_picks_central_point() {
        let points = [p(0.0, 0.0), p(0.0, 10.0), p(0.0, 5.0)];
        let cluster = Cluster { members: vec![0, 1, 2] };
        assert_eq!(centroid_member(&points, &cluster), Some(2));
    }

    #[test]
    #[should_panic(expected = "zero clusters")]
    fn zero_k_rejected() {
        cluster_by_hilbert(&[p(0.0, 0.0)], 0);
    }

    proptest! {
        /// Hilbert clustering is a partition: every index appears exactly once.
        #[test]
        fn prop_hilbert_partition(
            coords in proptest::collection::vec((-89.0f64..89.0, -179.0f64..179.0), 1..200),
            k in 1usize..30,
        ) {
            let points: Vec<GeoPoint> =
                coords.iter().map(|&(la, lo)| p(la, lo)).collect();
            let clusters = cluster_by_hilbert(&points, k);
            let mut seen: Vec<usize> =
                clusters.iter().flat_map(|c| c.members.iter().copied()).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..points.len()).collect::<Vec<_>>());
        }
    }
}
