//! Geographic coordinates and great-circle distance.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in kilometres (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6_371.0;

/// Error returned when constructing a [`GeoPoint`] from out-of-range
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidCoordinates;

impl fmt::Display for InvalidCoordinates {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "latitude must be in [-90, 90] and longitude in [-180, 180]")
    }
}

impl std::error::Error for InvalidCoordinates {}

/// A point on the Earth's surface in decimal degrees.
///
/// # Examples
///
/// ```
/// use cdnc_geo::GeoPoint;
///
/// let p = GeoPoint::new(33.749, -84.388)?;
/// assert_eq!(p.distance_km(&p), 0.0);
/// # Ok::<(), cdnc_geo::point::InvalidCoordinates>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
}

impl GeoPoint {
    /// Creates a point from latitude and longitude in decimal degrees.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCoordinates`] when either coordinate is non-finite or
    /// out of range (|lat| > 90, |lon| > 180).
    pub fn new(lat_deg: f64, lon_deg: f64) -> Result<Self, InvalidCoordinates> {
        if !lat_deg.is_finite()
            || !lon_deg.is_finite()
            || !(-90.0..=90.0).contains(&lat_deg)
            || !(-180.0..=180.0).contains(&lon_deg)
        {
            return Err(InvalidCoordinates);
        }
        Ok(GeoPoint { lat_deg, lon_deg })
    }

    /// Latitude in decimal degrees.
    pub fn lat_deg(&self) -> f64 {
        self.lat_deg
    }

    /// Longitude in decimal degrees.
    pub fn lon_deg(&self) -> f64 {
        self.lon_deg
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }

    /// Returns a copy displaced by roughly `dlat_km` north and `dlon_km`
    /// east, clamped to valid coordinate ranges. Used to jitter server
    /// positions inside a metro area.
    pub fn displaced_km(&self, dlat_km: f64, dlon_km: f64) -> GeoPoint {
        let km_per_deg_lat = 2.0 * std::f64::consts::PI * EARTH_RADIUS_KM / 360.0;
        let lat = (self.lat_deg + dlat_km / km_per_deg_lat).clamp(-90.0, 90.0);
        let km_per_deg_lon = km_per_deg_lat * self.lat_deg.to_radians().cos().max(0.01);
        let mut lon = self.lon_deg + dlon_km / km_per_deg_lon;
        if lon > 180.0 {
            lon -= 360.0;
        } else if lon < -180.0 {
            lon += 360.0;
        }
        GeoPoint { lat_deg: lat, lon_deg: lon }
    }

    /// A coarse location key: coordinates rounded to `decimals` places.
    ///
    /// Servers sharing a key are "geographically collocated" in the sense of
    /// paper §3.4.1 (same longitude and latitude after geolocation rounding).
    pub fn location_key(&self, decimals: u32) -> (i64, i64) {
        let scale = 10f64.powi(decimals as i32);
        ((self.lat_deg * scale).round() as i64, (self.lon_deg * scale).round() as i64)
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}°, {:.3}°)", self.lat_deg, self.lon_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    #[test]
    fn known_distances() {
        // Atlanta <-> Los Angeles ≈ 3,110 km.
        let atl = p(33.749, -84.388);
        let la = p(34.052, -118.244);
        let d = atl.distance_km(&la);
        assert!((3_050.0..3_170.0).contains(&d), "ATL-LA {d}");
        // New York <-> London ≈ 5,570 km.
        let ny = p(40.713, -74.006);
        let lon = p(51.507, -0.128);
        let d = ny.distance_km(&lon);
        assert!((5_520.0..5_620.0).contains(&d), "NY-LDN {d}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = p(10.0, 20.0);
        let b = p(-35.0, 140.0);
        assert_eq!(a.distance_km(&a), 0.0);
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = p(0.0, 0.0);
        let b = p(0.0, 180.0);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((a.distance_km(&b) - half).abs() < 1.0);
    }

    #[test]
    fn invalid_coordinates_rejected() {
        assert!(GeoPoint::new(91.0, 0.0).is_err());
        assert!(GeoPoint::new(-91.0, 0.0).is_err());
        assert!(GeoPoint::new(0.0, 181.0).is_err());
        assert!(GeoPoint::new(0.0, -181.0).is_err());
        assert!(GeoPoint::new(f64::NAN, 0.0).is_err());
        assert!(GeoPoint::new(0.0, f64::INFINITY).is_err());
        assert!(GeoPoint::new(90.0, 180.0).is_ok());
    }

    #[test]
    fn displacement_moves_roughly_right_distance() {
        let a = p(33.0, -84.0);
        let b = a.displaced_km(10.0, 0.0);
        assert!((a.distance_km(&b) - 10.0).abs() < 0.2);
        let c = a.displaced_km(0.0, 10.0);
        assert!((a.distance_km(&c) - 10.0).abs() < 0.2);
    }

    #[test]
    fn displacement_wraps_longitude() {
        let a = p(0.0, 179.9);
        let b = a.displaced_km(0.0, 50.0);
        assert!(b.lon_deg() < 0.0, "should wrap to the western hemisphere");
    }

    #[test]
    fn location_key_groups_nearby_points() {
        let a = p(33.7491, -84.3881);
        let b = p(33.7493, -84.3879);
        assert_eq!(a.location_key(2), b.location_key(2));
        assert_ne!(a.location_key(4), b.location_key(4));
    }

    proptest! {
        /// Triangle inequality holds for the haversine metric.
        #[test]
        fn prop_triangle_inequality(
            lat1 in -89.0f64..89.0, lon1 in -179.0f64..179.0,
            lat2 in -89.0f64..89.0, lon2 in -179.0f64..179.0,
            lat3 in -89.0f64..89.0, lon3 in -179.0f64..179.0,
        ) {
            let a = p(lat1, lon1);
            let b = p(lat2, lon2);
            let c = p(lat3, lon3);
            prop_assert!(a.distance_km(&c) <= a.distance_km(&b) + b.distance_km(&c) + 1e-6);
        }

        /// Distance is non-negative and bounded by half the circumference.
        #[test]
        fn prop_distance_bounds(
            lat1 in -90.0f64..=90.0, lon1 in -180.0f64..=180.0,
            lat2 in -90.0f64..=90.0, lon2 in -180.0f64..=180.0,
        ) {
            let d = p(lat1, lon1).distance_km(&p(lat2, lon2));
            prop_assert!(d >= 0.0);
            prop_assert!(d <= std::f64::consts::PI * EARTH_RADIUS_KM + 1e-6);
        }
    }
}
