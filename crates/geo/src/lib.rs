//! # cdnc-geo
//!
//! Geography substrate for the CDN consistency study.
//!
//! The paper's measurement and evaluation both lean on geography:
//!
//! * content-server placement across continents drives propagation delay
//!   (paper Fig. 8) and traffic cost in km·KB (Figs. 16–17, 23);
//! * geographically collocated servers are clustered to isolate the TTL
//!   effect (Fig. 5) and to test for proximity-aware multicast trees
//!   (Fig. 11);
//! * HAT (paper §5.2) groups servers into clusters by **Hilbert number** —
//!   a space-filling-curve linearisation of (longitude, latitude) — and
//!   builds its supernode tree proximity-aware.
//!
//! This crate provides those pieces: [`GeoPoint`] with great-circle
//! distances, [`hilbert`] encoding, a [`world`] generator that places nodes
//! in real cities with realistic ISP assignment, and [`cluster`] utilities.
//!
//! # Examples
//!
//! ```
//! use cdnc_geo::GeoPoint;
//!
//! let atlanta = GeoPoint::new(33.749, -84.388).unwrap();
//! let london = GeoPoint::new(51.507, -0.128).unwrap();
//! let km = atlanta.distance_km(&london);
//! assert!((6_700.0..6_900.0).contains(&km));
//! ```

pub mod cluster;
pub mod hilbert;
pub mod point;
pub mod world;

pub use cluster::{cluster_by_hilbert, cluster_by_location, Cluster};
pub use hilbert::hilbert_index;
pub use point::GeoPoint;
pub use world::{IspId, Region, World, WorldBuilder, WorldNode};
