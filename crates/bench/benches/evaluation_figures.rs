//! Benchmarks of the §4 evaluation workloads: one group per figure
//! (Figs. 14–20), each timing the simulation(s) that regenerate it.

use cdnc_bench::bench_sim_config;
use cdnc_core::{run, MethodKind, Scheme};
use cdnc_simcore::SimDuration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const N: usize = 40;

fn bench_fig14_fig15(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_fig15_methods");
    group.sample_size(10);
    for method in [MethodKind::Push, MethodKind::Invalidation, MethodKind::Ttl] {
        group.bench_with_input(
            BenchmarkId::new("unicast", format!("{method}")),
            &method,
            |b, &m| b.iter(|| run(&bench_sim_config(Scheme::Unicast(m), N))),
        );
        group.bench_with_input(
            BenchmarkId::new("multicast", format!("{method}")),
            &method,
            |b, &m| b.iter(|| run(&bench_sim_config(Scheme::Multicast { method: m, arity: 2 }, N))),
        );
    }
    group.finish();
}

fn bench_fig16_fig17(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_fig17_traffic");
    group.sample_size(10);
    for ttl in [10u64, 60] {
        group.bench_with_input(BenchmarkId::new("ttl_sweep", ttl), &ttl, |b, &ttl| {
            b.iter(|| {
                let mut cfg = bench_sim_config(Scheme::Unicast(MethodKind::Ttl), N);
                cfg.server_ttl = SimDuration::from_secs(ttl);
                run(&cfg)
            })
        });
    }
    group.finish();
}

fn bench_fig18(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_user_ttl");
    group.sample_size(10);
    for uttl in [10u64, 120] {
        group.bench_with_input(BenchmarkId::new("invalidation", uttl), &uttl, |b, &uttl| {
            b.iter(|| {
                let mut cfg = bench_sim_config(Scheme::Unicast(MethodKind::Invalidation), N);
                cfg.user_ttl = SimDuration::from_secs(uttl);
                run(&cfg)
            })
        });
    }
    group.finish();
}

fn bench_fig19(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_packet_size");
    group.sample_size(10);
    for kb in [1.0f64, 500.0] {
        group.bench_with_input(
            BenchmarkId::new("push_unicast", format!("{kb}KB")),
            &kb,
            |b, &kb| {
                b.iter(|| {
                    let mut cfg = bench_sim_config(Scheme::Unicast(MethodKind::Push), N);
                    cfg.update_packet_kb = kb;
                    run(&cfg)
                })
            },
        );
    }
    group.finish();
}

fn bench_fig20(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig20_network_size");
    group.sample_size(10);
    for n in [40usize, 120] {
        group.bench_with_input(BenchmarkId::new("push_unicast", n), &n, |b, &n| {
            b.iter(|| run(&bench_sim_config(Scheme::Unicast(MethodKind::Push), n)))
        });
        group.bench_with_input(BenchmarkId::new("ttl_multicast", n), &n, |b, &n| {
            b.iter(|| {
                run(&bench_sim_config(Scheme::Multicast { method: MethodKind::Ttl, arity: 2 }, n))
            })
        });
    }
    group.finish();
}

criterion_group!(
    evaluation_figures,
    bench_fig14_fig15,
    bench_fig16_fig17,
    bench_fig18,
    bench_fig19,
    bench_fig20
);
criterion_main!(evaluation_figures);
