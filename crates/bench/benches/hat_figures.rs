//! Benchmarks of the §5 HAT comparison workloads (Figs. 22–24).

use cdnc_bench::bench_section5_config;
use cdnc_core::{run, Scheme};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const N: usize = 60;

fn bench_fig22_fig23_lineup(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig22_fig23_lineup");
    group.sample_size(10);
    for scheme in Scheme::section5_lineup() {
        group.bench_with_input(BenchmarkId::from_parameter(scheme.label()), &scheme, |b, &s| {
            b.iter(|| run(&bench_section5_config(s, N)))
        });
    }
    group.finish();
}

fn bench_fig24_roaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig24_roaming");
    group.sample_size(10);
    for scheme in [Scheme::hat(), Scheme::hybrid()] {
        group.bench_with_input(BenchmarkId::from_parameter(scheme.label()), &scheme, |b, &s| {
            b.iter(|| {
                let mut cfg = bench_section5_config(s, N);
                cfg.users_roam = true;
                run(&cfg)
            })
        });
    }
    group.finish();
}

criterion_group!(hat_figures, bench_fig22_fig23_lineup, bench_fig24_roaming);
criterion_main!(hat_figures);
