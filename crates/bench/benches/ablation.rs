//! Ablation benches for the design choices called out in DESIGN.md:
//! multicast-tree arity, HAT cluster count, and Hilbert vs naive
//! longitude-band clustering.

use cdnc_bench::{bench_section5_config, bench_sim_config};
use cdnc_core::{run, MethodKind, Scheme};
use cdnc_geo::{cluster_by_hilbert, GeoPoint, WorldBuilder};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tree_arity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tree_arity");
    group.sample_size(10);
    for arity in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(arity), &arity, |b, &a| {
            b.iter(|| {
                run(&bench_sim_config(Scheme::Multicast { method: MethodKind::Push, arity: a }, 60))
            })
        });
    }
    group.finish();
}

fn bench_hat_cluster_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_hat_clusters");
    group.sample_size(10);
    for clusters in [5usize, 20, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(clusters), &clusters, |b, &k| {
            b.iter(|| {
                run(&bench_section5_config(
                    Scheme::Hybrid {
                        clusters: k,
                        tree_arity: 4,
                        member_method: MethodKind::SelfAdaptive,
                    },
                    80,
                ))
            })
        });
    }
    group.finish();
}

/// Naive comparison baseline: chunk points by longitude instead of Hilbert
/// number (loses the latitude locality the curve preserves).
fn cluster_by_longitude(points: &[GeoPoint], k: usize) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a].lon_deg().partial_cmp(&points[b].lon_deg()).expect("finite").then(a.cmp(&b))
    });
    order.chunks(points.len().div_ceil(k).max(1)).map(<[usize]>::to_vec).collect()
}

fn bench_clustering(c: &mut Criterion) {
    let world = WorldBuilder::new(850).seed(5).build();
    let points: Vec<GeoPoint> = world.nodes().iter().map(|n| n.location).collect();
    let mut group = c.benchmark_group("ablation_clustering");
    group.bench_function("hilbert_20", |b| b.iter(|| cluster_by_hilbert(&points, 20)));
    group.bench_function("longitude_20", |b| b.iter(|| cluster_by_longitude(&points, 20)));
    group.finish();
}

fn bench_failure_rate(c: &mut Criterion) {
    use cdnc_core::FailureConfig;
    let mut group = c.benchmark_group("ablation_failure_rate");
    group.sample_size(10);
    for gap_s in [2_000.0f64, 400.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("gap{gap_s:.0}s")),
            &gap_s,
            |b, &gap| {
                b.iter(|| {
                    let mut cfg = bench_sim_config(
                        Scheme::Multicast { method: MethodKind::Push, arity: 2 },
                        60,
                    );
                    cfg.failures = Some(FailureConfig::with_mean_gap_s(gap));
                    run(&cfg)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    ablation,
    bench_tree_arity,
    bench_hat_cluster_count,
    bench_clustering,
    bench_failure_rate
);
criterion_main!(ablation);
