//! Scaling benches for the deterministic parallel runtime: the same crawl
//! and fig20-style sweep at 1, 2 and 4 worker threads. Because results are
//! bit-identical across thread counts, the only thing these measure is wall
//! time — the speedup (or, on a single-core box, the overhead) of fanning
//! out.

use cdnc_experiments::eval_figs::fig20;
use cdnc_experiments::{RunCtx, Scale};
use cdnc_obs::Registry;
use cdnc_par::Pool;
use cdnc_trace::{crawl_par, CrawlConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const THREADS: [usize; 3] = [1, 2, 4];

fn bench_crawl_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_scaling_crawl");
    group.sample_size(10);
    let cfg = CrawlConfig { servers: 120, users: 40, days: 2, seed: 7, ..CrawlConfig::tiny() };
    for jobs in THREADS {
        group.bench_with_input(BenchmarkId::new("crawl", jobs), &jobs, |b, &jobs| {
            let pool = Pool::new(jobs);
            b.iter(|| crawl_par(&cfg, &pool))
        });
    }
    group.finish();
}

fn bench_fig20_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_scaling_fig20");
    group.sample_size(10);
    for jobs in THREADS {
        group.bench_with_input(BenchmarkId::new("fig20", jobs), &jobs, |b, &jobs| {
            let ctx = RunCtx::with_pool(Scale::Smoke, Pool::new(jobs));
            b.iter(|| fig20(ctx, &Registry::disabled()))
        });
    }
    group.finish();
}

criterion_group!(par_scaling, bench_crawl_scaling, bench_fig20_scaling);
criterion_main!(par_scaling);
