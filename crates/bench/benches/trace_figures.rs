//! Benchmarks of the §3 measurement pipeline: one group per paper figure
//! (Figs. 3–12), each timing the analysis that regenerates it over a shared
//! crawl trace.

use cdnc_analysis::causes::{
    detect_absences, distance_vs_consistency, inconsistency_by_absence_length, isp_inconsistency,
    provider_inconsistency_lengths, provider_response_times,
};
use cdnc_analysis::inconsistency::day_episodes;
use cdnc_analysis::tree_test::{
    daily_ranks, group_daily_mean_inconsistency, max_inconsistency_cdf, rank_churn,
};
use cdnc_analysis::ttl_inference::{infer_ttl, theory_rmse};
use cdnc_analysis::user_view::{all_continuous_times, redirect_fraction_cdf};
use cdnc_bench::bench_trace;
use cdnc_geo::cluster_by_location;
use cdnc_trace::{crawl, CrawlConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_crawl(c: &mut Criterion) {
    let mut group = c.benchmark_group("crawl");
    group.sample_size(10);
    group.bench_function("synthesize_trace_day", |b| {
        b.iter(|| crawl(&CrawlConfig { servers: 30, users: 10, days: 1, ..CrawlConfig::tiny() }))
    });
    group.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let trace = bench_trace();
    c.bench_function("fig3_episode_extraction", |b| {
        b.iter(|| day_episodes(&trace.days[0], &trace.servers, None))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("fig4_user_view");
    group.sample_size(20);
    group.bench_function("redirect_cdf", |b| b.iter(|| redirect_fraction_cdf(&trace)));
    group.bench_function("continuous_times", |b| b.iter(|| all_continuous_times(&trace, 1)));
    group.finish();
}

fn bench_fig5_fig6(c: &mut Criterion) {
    let trace = bench_trace();
    let lengths: Vec<f64> = trace
        .days
        .iter()
        .flat_map(|day| day_episodes(day, &trace.servers, None))
        .map(|e| e.length_s)
        .collect();
    let mut group = c.benchmark_group("fig5_fig6_ttl_inference");
    let points: Vec<_> = trace.servers.iter().map(|s| s.location).collect();
    group.bench_function("fig5_location_clustering", |b| {
        b.iter(|| cluster_by_location(black_box(&points), 0))
    });
    let candidates: Vec<f64> = (40..=80).step_by(2).map(f64::from).collect();
    group.bench_function("fig6_infer_ttl", |b| b.iter(|| infer_ttl(&lengths, &candidates)));
    group.bench_function("fig6_theory_rmse", |b| b.iter(|| theory_rmse(&lengths, 60.0, 61)));
    group.finish();
}

fn bench_fig7_to_fig10(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("fig7_to_fig10_causes");
    group.bench_function("fig7_provider_inconsistency", |b| {
        b.iter(|| provider_inconsistency_lengths(&trace.days[0]))
    });
    group.bench_function("fig8_distance_correlation", |b| {
        b.iter(|| distance_vs_consistency(&trace, 0, 2_000.0))
    });
    group.bench_function("fig9_isp_breakdown", |b| b.iter(|| isp_inconsistency(&trace, 0)));
    group.bench_function("fig10a_response_times", |b| {
        b.iter(|| provider_response_times(&trace.days[0]))
    });
    group.bench_function("fig10b_absence_detection", |b| {
        b.iter(|| detect_absences(&trace.days[0], trace.poll_interval))
    });
    group.bench_function("fig10c_absence_binning", |b| {
        b.iter(|| inconsistency_by_absence_length(&trace, 0))
    });
    group.finish();
}

fn bench_fig11_fig12(c: &mut Criterion) {
    let trace = bench_trace();
    let points: Vec<_> = trace.servers.iter().map(|s| s.location).collect();
    let groups: Vec<Vec<u32>> = cluster_by_location(&points, 0)
        .into_iter()
        .map(|cl| cl.members.into_iter().map(|m| m as u32).collect())
        .collect();
    let mut group = c.benchmark_group("fig11_fig12_tree_tests");
    group.sample_size(20);
    group.bench_function("fig11_rank_churn", |b| {
        b.iter(|| {
            let means = group_daily_mean_inconsistency(&trace, &groups);
            rank_churn(&daily_ranks(&means))
        })
    });
    group.bench_function("fig12_max_inconsistency_cdf", |b| {
        b.iter(|| max_inconsistency_cdf(&trace, 0))
    });
    group.finish();
}

criterion_group!(
    trace_figures,
    bench_crawl,
    bench_fig3,
    bench_fig4,
    bench_fig5_fig6,
    bench_fig7_to_fig10,
    bench_fig11_fig12
);
criterion_main!(trace_figures);
