//! Micro-benchmarks of the hot substrate operations.

use cdnc_core::DistributionTree;
use cdnc_geo::{hilbert_index, GeoPoint, WorldBuilder};
use cdnc_net::NodeId;
use cdnc_simcore::stats::{Cdf, OnlineStats};
use cdnc_simcore::{EventQueue, SimRng, SimTime};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            let mut rng = SimRng::seed_from_u64(1);
            let times: Vec<u64> = (0..n).map(|_| rng.int_range(0, 1_000_000)).collect();
            b.iter(|| {
                let mut q = EventQueue::with_capacity(n);
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime::from_micros(t), i);
                }
                let mut acc = 0usize;
                while let Some((_, e)) = q.pop() {
                    acc = acc.wrapping_add(e);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_geo(c: &mut Criterion) {
    let mut group = c.benchmark_group("geo");
    let a = GeoPoint::new(33.749, -84.388).unwrap();
    let b = GeoPoint::new(35.690, 139.692).unwrap();
    group.bench_function("haversine", |bch| bch.iter(|| black_box(a).distance_km(black_box(&b))));
    group.bench_function("hilbert_index", |bch| bch.iter(|| hilbert_index(black_box(&b))));
    group.finish();
}

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    for n in [170usize, 850] {
        let world = WorldBuilder::new(n).seed(3).build();
        let mut locations: Vec<GeoPoint> = vec![world.provider_location()];
        locations.extend(world.nodes().iter().map(|w| w.location));
        let members: Vec<NodeId> = (1..=n as u32).map(NodeId).collect();
        group.bench_with_input(BenchmarkId::new("proximity_binary", n), &n, |bch, _| {
            bch.iter(|| {
                DistributionTree::build_proximity(NodeId(0), &members, 2, |id| {
                    locations[id.index()]
                })
            });
        });
    }
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    let mut rng = SimRng::seed_from_u64(2);
    let samples: Vec<f64> = (0..100_000).map(|_| rng.uniform_range(0.0, 100.0)).collect();
    group.bench_function("cdf_build_100k", |b| {
        b.iter(|| Cdf::from_samples(samples.iter().copied()))
    });
    let cdf = Cdf::from_samples(samples.iter().copied());
    group.bench_function("cdf_percentile", |b| b.iter(|| cdf.percentile(black_box(95.0))));
    group.bench_function("online_stats_100k", |b| {
        b.iter(|| {
            let mut s = OnlineStats::new();
            for &x in &samples {
                s.push(x);
            }
            black_box(s.std_dev())
        })
    });
    group.finish();
}

criterion_group!(substrates, bench_event_queue, bench_geo, bench_tree_build, bench_stats);
criterion_main!(substrates);
