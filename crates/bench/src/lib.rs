//! # cdnc-bench
//!
//! Shared fixtures for the Criterion benchmark harness. Each bench target
//! regenerates a paper figure's workload at a reduced-but-faithful scale:
//!
//! * `substrates` — micro-benches of the hot substrate operations;
//! * `trace_figures` — the §3 measurement pipeline (Figs. 3–12);
//! * `evaluation_figures` — the §4 evaluation sims (Figs. 14–20);
//! * `hat_figures` — the §5 HAT comparison (Figs. 22–24);
//! * `ablation` — the design-choice ablations called out in DESIGN.md;
//! * `par_scaling` — crawl + fig20 wall time at 1/2/4 worker threads.

use cdnc_core::{Scheme, SimConfig};
use cdnc_simcore::SimRng;
use cdnc_trace::{crawl, CrawlConfig, Trace, UpdateSequence};

/// The update workload every evaluation bench replays.
pub fn bench_updates() -> UpdateSequence {
    UpdateSequence::live_game(&mut SimRng::seed_from_u64(42))
}

/// A §4-style configuration small enough to benchmark repeatedly.
pub fn bench_sim_config(scheme: Scheme, servers: usize) -> SimConfig {
    let mut cfg = SimConfig::section4(scheme, bench_updates());
    cfg.servers = servers;
    cfg
}

/// A §5-style configuration small enough to benchmark repeatedly.
pub fn bench_section5_config(scheme: Scheme, servers: usize) -> SimConfig {
    let mut cfg = SimConfig::section5(scheme, bench_updates());
    cfg.servers = servers;
    cfg
}

/// A small crawl trace shared by the §3 pipeline benches.
pub fn bench_trace() -> Trace {
    crawl(&CrawlConfig { servers: 50, users: 20, days: 1, seed: 7, ..CrawlConfig::tiny() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_usable() {
        assert!(bench_updates().len() > 100);
        let trace = bench_trace();
        assert_eq!(trace.servers.len(), 50);
        let cfg = bench_sim_config(Scheme::hat(), 40);
        assert_eq!(cfg.servers, 40);
        assert_eq!(bench_section5_config(Scheme::hat(), 60).server_ttl.as_secs(), 60);
    }
}
