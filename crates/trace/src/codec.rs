//! Binary (de)serialisation of crawl traces.
//!
//! A real measurement study crawls once and re-analyses many times, so the
//! trace must round-trip through disk. The format is a simple
//! little-endian, fixed-width layout with a magic header and version — no
//! external format crates needed, and gigabyte-scale traces stream through
//! without intermediate allocation.

use crate::records::{DayTrace, ProviderPoll, ServerMeta, ServerPoll, Trace, UserMeta, UserPoll};
use crate::snapshot::{SnapshotId, UpdateSequence};
use cdnc_geo::{GeoPoint, IspId};
use cdnc_simcore::{SimDuration, SimTime};
use std::io::{self, Read, Write};

/// File magic: "CDNC".
const MAGIC: [u8; 4] = *b"CDNC";
/// Format version.
const VERSION: u32 = 1;

/// Writes `trace` to `w` in the binary trace format.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    put_u32(&mut w, VERSION)?;
    // Servers.
    put_u32(&mut w, trace.servers.len() as u32)?;
    for s in &trace.servers {
        put_u32(&mut w, s.id)?;
        put_point(&mut w, &s.location)?;
        put_u16(&mut w, s.isp.0)?;
        put_f64(&mut w, s.distance_to_provider_km)?;
        put_i64(&mut w, s.true_skew_us)?;
        put_i64(&mut w, s.measured_skew_us)?;
    }
    // Users.
    put_u32(&mut w, trace.users.len() as u32)?;
    for u in &trace.users {
        put_u32(&mut w, u.id)?;
        put_point(&mut w, &u.location)?;
    }
    put_u16(&mut w, trace.provider_isp.0)?;
    put_point(&mut w, &trace.provider_location)?;
    put_u64(&mut w, trace.poll_interval.as_micros())?;
    put_u64(&mut w, trace.session.as_micros())?;
    // Days.
    put_u32(&mut w, trace.days.len() as u32)?;
    for day in &trace.days {
        put_u16(&mut w, day.day)?;
        put_u32(&mut w, day.updates.len() as u32)?;
        for &t in day.updates.times() {
            put_u64(&mut w, t.as_micros())?;
        }
        put_u32(&mut w, day.server_polls.len() as u32)?;
        for p in &day.server_polls {
            put_u32(&mut w, p.server)?;
            put_u64(&mut w, p.time.as_micros())?;
            put_i64(&mut w, p.reported_gmt_us)?;
            put_u32(&mut w, p.snapshot.0)?;
            put_u64(&mut w, p.response_time.as_micros())?;
        }
        put_u32(&mut w, day.provider_polls.len() as u32)?;
        for p in &day.provider_polls {
            put_u32(&mut w, p.replica)?;
            put_u64(&mut w, p.time.as_micros())?;
            put_u32(&mut w, p.snapshot.0)?;
            put_u64(&mut w, p.response_time.as_micros())?;
        }
        put_u32(&mut w, day.user_polls.len() as u32)?;
        for p in &day.user_polls {
            put_u32(&mut w, p.user)?;
            put_u64(&mut w, p.time.as_micros())?;
            put_u32(&mut w, p.server)?;
            put_u32(&mut w, p.snapshot.0)?;
        }
    }
    Ok(())
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns `InvalidData` when the magic, version, or any embedded value is
/// malformed, and any underlying I/O error.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Trace> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(bad("not a CDNC trace file"));
    }
    let version = get_u32(&mut r)?;
    if version != VERSION {
        return Err(bad(format!("unsupported trace version {version}")));
    }
    let n_servers = get_u32(&mut r)? as usize;
    let mut servers = Vec::with_capacity(n_servers.min(1 << 20));
    for _ in 0..n_servers {
        servers.push(ServerMeta {
            id: get_u32(&mut r)?,
            location: get_point(&mut r)?,
            isp: IspId(get_u16(&mut r)?),
            distance_to_provider_km: get_f64(&mut r)?,
            true_skew_us: get_i64(&mut r)?,
            measured_skew_us: get_i64(&mut r)?,
        });
    }
    let n_users = get_u32(&mut r)? as usize;
    let mut users = Vec::with_capacity(n_users.min(1 << 20));
    for _ in 0..n_users {
        users.push(UserMeta { id: get_u32(&mut r)?, location: get_point(&mut r)? });
    }
    let provider_isp = IspId(get_u16(&mut r)?);
    let provider_location = get_point(&mut r)?;
    let poll_interval = SimDuration::from_micros(get_u64(&mut r)?);
    let session = SimDuration::from_micros(get_u64(&mut r)?);
    let n_days = get_u32(&mut r)? as usize;
    let mut days = Vec::with_capacity(n_days.min(1 << 10));
    for _ in 0..n_days {
        let day = get_u16(&mut r)?;
        let n_updates = get_u32(&mut r)? as usize;
        let mut times = Vec::with_capacity(n_updates.min(1 << 20));
        for _ in 0..n_updates {
            times.push(SimTime::from_micros(get_u64(&mut r)?));
        }
        let updates = UpdateSequence::from_times(times)
            .map_err(|e| bad(format!("corrupt update sequence: {e}")))?;
        let n_sp = get_u32(&mut r)? as usize;
        let mut server_polls = Vec::with_capacity(n_sp.min(1 << 24));
        for _ in 0..n_sp {
            server_polls.push(ServerPoll {
                server: get_u32(&mut r)?,
                time: SimTime::from_micros(get_u64(&mut r)?),
                reported_gmt_us: get_i64(&mut r)?,
                snapshot: SnapshotId(get_u32(&mut r)?),
                response_time: SimDuration::from_micros(get_u64(&mut r)?),
            });
        }
        let n_pp = get_u32(&mut r)? as usize;
        let mut provider_polls = Vec::with_capacity(n_pp.min(1 << 24));
        for _ in 0..n_pp {
            provider_polls.push(ProviderPoll {
                replica: get_u32(&mut r)?,
                time: SimTime::from_micros(get_u64(&mut r)?),
                snapshot: SnapshotId(get_u32(&mut r)?),
                response_time: SimDuration::from_micros(get_u64(&mut r)?),
            });
        }
        let n_up = get_u32(&mut r)? as usize;
        let mut user_polls = Vec::with_capacity(n_up.min(1 << 24));
        for _ in 0..n_up {
            user_polls.push(UserPoll {
                user: get_u32(&mut r)?,
                time: SimTime::from_micros(get_u64(&mut r)?),
                server: get_u32(&mut r)?,
                snapshot: SnapshotId(get_u32(&mut r)?),
            });
        }
        days.push(DayTrace { day, updates, server_polls, provider_polls, user_polls });
    }
    Ok(Trace { servers, users, provider_isp, provider_location, poll_interval, session, days })
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn put_u16<W: Write>(w: &mut W, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn put_i64<W: Write>(w: &mut W, v: i64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn put_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn put_point<W: Write>(w: &mut W, p: &GeoPoint) -> io::Result<()> {
    put_f64(w, p.lat_deg())?;
    put_f64(w, p.lon_deg())
}

fn get_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}
fn get_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn get_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn get_i64<R: Read>(r: &mut R) -> io::Result<i64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(i64::from_le_bytes(b))
}
fn get_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}
fn get_point<R: Read>(r: &mut R) -> io::Result<GeoPoint> {
    let lat = get_f64(r)?;
    let lon = get_f64(r)?;
    GeoPoint::new(lat, lon).map_err(|e| bad(format!("corrupt coordinates: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::{crawl, CrawlConfig};

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = crawl(&CrawlConfig { servers: 15, users: 8, days: 2, ..CrawlConfig::tiny() });
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_trace(&b"NOPE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_file_rejected() {
        let trace = crawl(&CrawlConfig { servers: 5, users: 3, days: 1, ..CrawlConfig::tiny() });
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_coordinates_rejected() {
        let trace = crawl(&CrawlConfig { servers: 2, users: 2, days: 1, ..CrawlConfig::tiny() });
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        // The first server's latitude starts right after magic+version+count.
        let lat_offset = 4 + 4 + 4 + 4;
        buf[lat_offset..lat_offset + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        let err = read_trace(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn size_is_compact() {
        let trace = crawl(&CrawlConfig { servers: 10, users: 5, days: 1, ..CrawlConfig::tiny() });
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        // ~32 bytes per server poll dominates; sanity-check the ballpark.
        let per_poll = buf.len() as f64 / trace.total_server_polls() as f64;
        assert!(per_poll < 80.0, "bytes per poll {per_poll}");
    }
}
