//! DNS-driven server assignment for end-users.
//!
//! Paper §3.3: the local DNS server caches a content-server IP for a short
//! time; on expiry, the CDN's authoritative DNS re-assigns a (possibly
//! different) nearby server for load balancing. A user polling every 10 s is
//! therefore redirected to another server on 13–17 % of visits, and lands on
//! stale content when the new server lags the old one.

use crate::records::ServerMeta;
use cdnc_geo::GeoPoint;
use cdnc_simcore::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Parameters of the DNS assignment process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DnsConfig {
    /// Range of the local DNS cache TTL, seconds (drawn per expiry).
    pub cache_ttl_range_s: (f64, f64),
    /// Size of the nearby-server candidate set the authoritative DNS load
    /// balances across.
    pub candidates: usize,
}

impl Default for DnsConfig {
    fn default() -> Self {
        // Mean cache TTL 65 s with 10 s polls and 7 candidates gives an
        // expected redirect fraction ≈ (10/65) × (6/7) ≈ 13–17 % per user —
        // the paper's Fig. 4(a) range.
        DnsConfig { cache_ttl_range_s: (45.0, 85.0), candidates: 7 }
    }
}

/// A user's server-assignment history: `(since, server)` entries, strictly
/// increasing in `since`, first entry at time zero.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssignmentTimeline {
    entries: Vec<(SimTime, u32)>,
}

impl AssignmentTimeline {
    /// The server assigned at instant `t`.
    pub fn server_at(&self, t: SimTime) -> u32 {
        let idx = self.entries.partition_point(|&(tt, _)| tt <= t);
        self.entries[idx - 1].1
    }

    /// The raw assignment entries.
    pub fn entries(&self) -> &[(SimTime, u32)] {
        &self.entries
    }
}

/// Generates a user's DNS assignment history over `[0, horizon]`.
///
/// The candidate set is the `config.candidates` servers closest to
/// `user_location`; each cache expiry draws a fresh uniform choice among
/// them (the authoritative DNS's load balancing).
///
/// # Panics
///
/// Panics if `servers` is empty or `config.candidates` is zero.
pub fn assignment_timeline(
    user_location: &GeoPoint,
    servers: &[ServerMeta],
    horizon: SimTime,
    config: &DnsConfig,
    rng: &mut SimRng,
) -> AssignmentTimeline {
    assert!(!servers.is_empty(), "no servers to assign");
    assert!(config.candidates > 0, "empty candidate set");
    let candidates = nearest_servers(user_location, servers, config.candidates);
    let mut entries = Vec::new();
    let mut t = SimTime::ZERO;
    let mut current = candidates[rng.index(candidates.len())];
    entries.push((t, current));
    loop {
        let ttl = SimDuration::from_secs_f64(
            rng.uniform_range(config.cache_ttl_range_s.0, config.cache_ttl_range_s.1),
        );
        t += ttl;
        if t > horizon {
            break;
        }
        let next = candidates[rng.index(candidates.len())];
        if next != current {
            entries.push((t, next));
            current = next;
        }
    }
    AssignmentTimeline { entries }
}

/// Indices of the `k` servers closest to `location` (ties broken by id).
pub fn nearest_servers(location: &GeoPoint, servers: &[ServerMeta], k: usize) -> Vec<u32> {
    let mut order: Vec<u32> = (0..servers.len() as u32).collect();
    order.sort_by(|&a, &b| {
        let da = servers[a as usize].location.distance_km(location);
        let db = servers[b as usize].location.distance_km(location);
        da.partial_cmp(&db).expect("finite distances").then(a.cmp(&b))
    });
    order.truncate(k.min(servers.len()));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_geo::IspId;

    fn meta(id: u32, lat: f64, lon: f64) -> ServerMeta {
        ServerMeta {
            id,
            location: GeoPoint::new(lat, lon).unwrap(),
            isp: IspId(0),
            distance_to_provider_km: 0.0,
            true_skew_us: 0,
            measured_skew_us: 0,
        }
    }

    fn grid_servers(n: usize) -> Vec<ServerMeta> {
        (0..n).map(|i| meta(i as u32, (i as f64) * 0.5, (i as f64) * 0.5)).collect()
    }

    #[test]
    fn nearest_orders_by_distance() {
        let servers = grid_servers(10);
        let user = GeoPoint::new(0.0, 0.0).unwrap();
        let near = nearest_servers(&user, &servers, 3);
        assert_eq!(near, vec![0, 1, 2]);
        let user2 = GeoPoint::new(4.5, 4.5).unwrap();
        let near2 = nearest_servers(&user2, &servers, 1);
        assert_eq!(near2, vec![9]);
    }

    #[test]
    fn assignments_stay_in_candidate_set() {
        let servers = grid_servers(30);
        let user = GeoPoint::new(1.0, 1.0).unwrap();
        let mut rng = SimRng::seed_from_u64(1);
        let cfg = DnsConfig::default();
        let tl = assignment_timeline(&user, &servers, SimTime::from_secs(9_000), &cfg, &mut rng);
        let candidates = nearest_servers(&user, &servers, cfg.candidates);
        for &(_, s) in tl.entries() {
            assert!(candidates.contains(&s), "assigned server {s} not a candidate");
        }
    }

    #[test]
    fn redirect_fraction_in_paper_range() {
        // Measure the fraction of 10 s polls that see a different server
        // than the previous poll, across many users: Fig. 4(a) reports most
        // users in 13–17 %.
        let servers = grid_servers(50);
        let mut rng = SimRng::seed_from_u64(2);
        let cfg = DnsConfig::default();
        let horizon = SimTime::from_secs(8_760);
        let mut redirected = 0u64;
        let mut total = 0u64;
        for u in 0..100 {
            let user = GeoPoint::new(0.2 * (u % 10) as f64, 0.2 * (u / 10) as f64).unwrap();
            let tl = assignment_timeline(&user, &servers, horizon, &cfg, &mut rng);
            let mut prev = None;
            let mut t = SimTime::ZERO;
            while t <= horizon {
                let s = tl.server_at(t);
                if let Some(p) = prev {
                    total += 1;
                    if p != s {
                        redirected += 1;
                    }
                }
                prev = Some(s);
                t += SimDuration::from_secs(10);
            }
        }
        let frac = redirected as f64 / total as f64;
        assert!((0.11..0.19).contains(&frac), "redirect fraction {frac}");
    }

    #[test]
    fn timeline_is_deterministic() {
        let servers = grid_servers(20);
        let user = GeoPoint::new(1.0, 1.0).unwrap();
        let cfg = DnsConfig::default();
        let run = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            assignment_timeline(&user, &servers, SimTime::from_secs(5_000), &cfg, &mut rng)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn entries_strictly_increase_and_change_server() {
        let servers = grid_servers(20);
        let user = GeoPoint::new(1.0, 1.0).unwrap();
        let mut rng = SimRng::seed_from_u64(5);
        let tl = assignment_timeline(
            &user,
            &servers,
            SimTime::from_secs(50_000),
            &DnsConfig::default(),
            &mut rng,
        );
        for w in tl.entries().windows(2) {
            assert!(w[0].0 < w[1].0);
            assert_ne!(w[0].1, w[1].1, "no-op reassignments should be collapsed");
        }
    }

    #[test]
    #[should_panic(expected = "no servers")]
    fn empty_server_set_rejected() {
        let mut rng = SimRng::seed_from_u64(0);
        assignment_timeline(
            &GeoPoint::new(0.0, 0.0).unwrap(),
            &[],
            SimTime::from_secs(10),
            &DnsConfig::default(),
            &mut rng,
        );
    }
}
