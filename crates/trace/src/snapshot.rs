//! Content snapshot sequences.
//!
//! A live webpage is a sequence of *snapshots* `C_0, C_1, …` published by the
//! content provider; `C_0` is the initial page. The paper's trace content is
//! live sports-game statistics: one selected day contains **306 distinct
//! snapshots over 2 h 26 min** (§4), with bursts of frequent updates during
//! play and long silences during breaks (§5 — the pattern HAT exploits).

use cdnc_simcore::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a content snapshot: `SnapshotId(i)` is the i-th version.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SnapshotId(pub u32);

impl SnapshotId {
    /// The snapshot that replaces this one.
    pub fn next(self) -> SnapshotId {
        SnapshotId(self.0 + 1)
    }
}

impl fmt::Display for SnapshotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Publication times of a snapshot sequence at the content provider.
///
/// `times()[i]` is when `SnapshotId(i)` was published; `times()[0]` is always
/// [`SimTime::ZERO`] (the initial content exists from the start).
///
/// # Examples
///
/// ```
/// use cdnc_simcore::SimTime;
/// use cdnc_trace::snapshot::{SnapshotId, UpdateSequence};
///
/// let seq = UpdateSequence::from_times(vec![
///     SimTime::ZERO,
///     SimTime::from_secs(60),
///     SimTime::from_secs(90),
/// ]).unwrap();
/// assert_eq!(seq.snapshot_at(SimTime::from_secs(75)), SnapshotId(1));
/// assert_eq!(seq.published_at(SnapshotId(2)), SimTime::from_secs(90));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateSequence {
    times: Vec<SimTime>,
}

/// Error constructing an [`UpdateSequence`] from a malformed time list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidSequence;

impl fmt::Display for InvalidSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("update times must start at zero and strictly increase")
    }
}

impl std::error::Error for InvalidSequence {}

impl UpdateSequence {
    /// Builds a sequence from explicit publication times.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSequence`] unless `times` is non-empty, starts at
    /// [`SimTime::ZERO`] and strictly increases.
    pub fn from_times(times: Vec<SimTime>) -> Result<Self, InvalidSequence> {
        if times.first() != Some(&SimTime::ZERO) {
            return Err(InvalidSequence);
        }
        if times.windows(2).any(|w| w[0] >= w[1]) {
            return Err(InvalidSequence);
        }
        Ok(UpdateSequence { times })
    }

    /// A sequence with a single initial snapshot and no updates.
    pub fn silent() -> Self {
        UpdateSequence { times: vec![SimTime::ZERO] }
    }

    /// Updates at a fixed `interval` until `horizon` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn periodic(interval: SimDuration, horizon: SimTime) -> Self {
        assert!(!interval.is_zero(), "zero update interval");
        let mut times = vec![SimTime::ZERO];
        let mut t = SimTime::ZERO + interval;
        while t <= horizon {
            times.push(t);
            t += interval;
        }
        UpdateSequence { times }
    }

    /// Poisson updates at `rate_per_s` until `horizon`.
    pub fn poisson(rate_per_s: f64, horizon: SimTime, rng: &mut SimRng) -> Self {
        let mut times = vec![SimTime::ZERO];
        let mut t = SimTime::ZERO;
        loop {
            t += SimDuration::from_secs_f64(rng.exponential(rate_per_s));
            if t > horizon {
                break;
            }
            times.push(t);
        }
        UpdateSequence { times }
    }

    /// The paper's live-game day: bursts of updates during two halves of
    /// play separated by a silent break, preceded by a quiet warm-up and
    /// followed by a sparse tail — ≈ 306 snapshots over 2 h 26 min.
    pub fn live_game(rng: &mut SimRng) -> Self {
        Self::live_game_with(&GameConfig::default(), rng)
    }

    /// An e-commerce catalogue page (paper §1's second live-content class):
    /// price/stock updates arrive all day at a modest Poisson rate with a
    /// few flash-sale bursts.
    pub fn ecommerce(horizon: SimTime, rng: &mut SimRng) -> Self {
        let mut times = vec![SimTime::ZERO];
        let mut t = SimTime::ZERO;
        // Background updates: mean gap 10 minutes.
        loop {
            t += SimDuration::from_secs_f64(rng.exponential(1.0 / 600.0));
            if t > horizon {
                break;
            }
            times.push(t);
        }
        // 2–4 flash sales: a minute of frantic updates each.
        for _ in 0..rng.int_range(2, 4) {
            let start =
                SimTime::from_secs_f64(rng.uniform_range(0.0, horizon.as_secs_f64().max(1.0)));
            let mut ft = start;
            let end = start + SimDuration::from_secs(60);
            while ft < end && ft <= horizon {
                ft += SimDuration::from_secs_f64(rng.exponential(1.0 / 4.0).max(0.5));
                times.push(ft);
            }
        }
        times.sort_unstable();
        times.dedup();
        // Re-impose strict monotonicity after the merge.
        let mut prev = SimTime::ZERO;
        let times = times
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                if i == 0 {
                    return SimTime::ZERO;
                }
                let t = t.max(prev + SimDuration::from_micros(1));
                prev = t;
                t
            })
            .collect();
        UpdateSequence { times }
    }

    /// An online auction (paper §1's third live-content class): sparse
    /// early bids accelerating towards the closing time — most updates land
    /// in the final minutes.
    ///
    /// # Panics
    ///
    /// Panics if `close` is the epoch.
    pub fn auction(close: SimTime, rng: &mut SimRng) -> Self {
        assert!(close > SimTime::ZERO, "auction must run for some time");
        let total = close.since(SimTime::ZERO).as_secs_f64();
        let mut times = vec![SimTime::ZERO];
        let mut t = 0.0;
        while t < total {
            // Bid rate grows as the close approaches: from one bid per
            // ~10 min early to one every ~2 s in the last moments.
            let remaining = (total - t).max(1.0);
            let rate = (1.0 / 600.0) + 3.0 / remaining.max(5.0);
            t += rng.exponential(rate).max(0.5);
            if t < total {
                times.push(SimTime::from_secs_f64(t));
            }
        }
        let mut prev = SimTime::ZERO;
        for time in times.iter_mut().skip(1) {
            *time = (*time).max(prev + SimDuration::from_micros(1));
            prev = *time;
        }
        UpdateSequence { times }
    }

    /// A live-game day with explicit phase structure.
    pub fn live_game_with(config: &GameConfig, rng: &mut SimRng) -> Self {
        let mut times = vec![SimTime::ZERO];
        let mut t = SimTime::ZERO;
        for phase in &config.phases {
            let end = t + phase.length;
            if let Some(gap_mean) = phase.mean_update_gap {
                let mut next = t;
                loop {
                    next += SimDuration::from_secs_f64(
                        rng.exponential(1.0 / gap_mean.as_secs_f64())
                            .max(config.min_gap.as_secs_f64()),
                    );
                    if next >= end {
                        break;
                    }
                    times.push(next);
                }
            }
            t = end;
        }
        UpdateSequence { times }
    }

    /// Publication times, in order. `times()[0]` is always zero.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Number of snapshots (including the initial one).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `false` — a sequence always contains the initial snapshot. Provided
    /// for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The last instant anything was published.
    pub fn last_update(&self) -> SimTime {
        *self.times.last().expect("sequence is never empty")
    }

    /// The snapshot current at the provider at instant `t`.
    pub fn snapshot_at(&self, t: SimTime) -> SnapshotId {
        let idx = self.times.partition_point(|&pt| pt <= t);
        SnapshotId((idx - 1) as u32)
    }

    /// When snapshot `id` was published.
    ///
    /// # Panics
    ///
    /// Panics if `id` is beyond the sequence.
    pub fn published_at(&self, id: SnapshotId) -> SimTime {
        self.times[id.0 as usize]
    }

    /// When snapshot `id` was superseded, or `None` if it is the latest.
    pub fn superseded_at(&self, id: SnapshotId) -> Option<SimTime> {
        self.times.get(id.0 as usize + 1).copied()
    }

    /// Iterator over `(id, published_at)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SnapshotId, SimTime)> + '_ {
        self.times.iter().enumerate().map(|(i, &t)| (SnapshotId(i as u32), t))
    }

    /// A copy of this sequence with every update delayed by an independent
    /// exponential lag of mean `mean_lag_s` seconds (kept strictly
    /// increasing). Models a downstream availability pipeline — e.g. the
    /// content provider's origin, which serves each update a few seconds
    /// after the real-world event (paper §3.4.2 measures ≈ 3.43 s).
    ///
    /// # Panics
    ///
    /// Panics if `mean_lag_s` is not positive and finite.
    pub fn delayed(&self, mean_lag_s: f64, rng: &mut SimRng) -> UpdateSequence {
        assert!(mean_lag_s > 0.0 && mean_lag_s.is_finite(), "bad lag: {mean_lag_s}");
        let mut times = Vec::with_capacity(self.times.len());
        times.push(SimTime::ZERO);
        let mut prev = SimTime::ZERO;
        for &t in &self.times[1..] {
            let lag = SimDuration::from_secs_f64(rng.exponential(1.0 / mean_lag_s));
            let shifted = (t + lag).max(prev + SimDuration::from_micros(1));
            times.push(shifted);
            prev = shifted;
        }
        UpdateSequence { times }
    }
}

/// One phase of a live game (warm-up, half, break, …).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GamePhase {
    /// Phase length.
    pub length: SimDuration,
    /// Mean gap between updates during the phase; `None` = silent phase.
    pub mean_update_gap: Option<SimDuration>,
}

impl GamePhase {
    /// A phase with Poisson updates at the given mean gap.
    pub fn active(length: SimDuration, mean_update_gap: SimDuration) -> Self {
        GamePhase { length, mean_update_gap: Some(mean_update_gap) }
    }

    /// A phase with no updates.
    pub fn silent(length: SimDuration) -> Self {
        GamePhase { length, mean_update_gap: None }
    }
}

/// Structure of a live-game day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameConfig {
    /// Phases in order.
    pub phases: Vec<GamePhase>,
    /// Smallest possible gap between consecutive updates.
    pub min_gap: SimDuration,
}

impl Default for GameConfig {
    fn default() -> Self {
        // 2 h 26 min = 8760 s total: 5 min warm-up, two 45-min halves with
        // ~18 s mean update gaps (~150 updates each), a 15-min silent break,
        // and a 31-min sparse tail — ≈ 306 snapshots, matching §4's
        // "306 different snapshots lasting 2 hours and 26 minutes".
        GameConfig {
            phases: vec![
                GamePhase::silent(SimDuration::from_secs(300)),
                GamePhase::active(SimDuration::from_secs(2_700), SimDuration::from_secs(18)),
                GamePhase::silent(SimDuration::from_secs(900)),
                GamePhase::active(SimDuration::from_secs(2_700), SimDuration::from_secs(18)),
                GamePhase::active(SimDuration::from_secs(2_160), SimDuration::from_secs(400)),
            ],
            min_gap: SimDuration::from_secs(2),
        }
    }
}

impl GameConfig {
    /// Total length of the game day.
    pub fn total_length(&self) -> SimDuration {
        self.phases.iter().map(|p| p.length).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_times_validation() {
        assert!(UpdateSequence::from_times(vec![]).is_err());
        assert!(UpdateSequence::from_times(vec![SimTime::from_secs(1)]).is_err());
        assert!(UpdateSequence::from_times(vec![SimTime::ZERO, SimTime::ZERO]).is_err());
        assert!(UpdateSequence::from_times(vec![SimTime::ZERO, SimTime::from_secs(1)]).is_ok());
    }

    #[test]
    fn snapshot_lookup() {
        let seq = UpdateSequence::from_times(vec![
            SimTime::ZERO,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        ])
        .unwrap();
        assert_eq!(seq.snapshot_at(SimTime::ZERO), SnapshotId(0));
        assert_eq!(seq.snapshot_at(SimTime::from_secs(9)), SnapshotId(0));
        assert_eq!(seq.snapshot_at(SimTime::from_secs(10)), SnapshotId(1));
        assert_eq!(seq.snapshot_at(SimTime::from_secs(1_000)), SnapshotId(2));
        assert_eq!(seq.superseded_at(SnapshotId(0)), Some(SimTime::from_secs(10)));
        assert_eq!(seq.superseded_at(SnapshotId(2)), None);
    }

    #[test]
    fn periodic_counts() {
        let seq = UpdateSequence::periodic(SimDuration::from_secs(10), SimTime::from_secs(60));
        assert_eq!(seq.len(), 7); // t = 0, 10, ..., 60
        assert_eq!(seq.last_update(), SimTime::from_secs(60));
    }

    #[test]
    fn poisson_respects_horizon_and_rate() {
        let mut rng = SimRng::seed_from_u64(1);
        let horizon = SimTime::from_secs(100_000);
        let seq = UpdateSequence::poisson(0.01, horizon, &mut rng);
        assert!(seq.last_update() <= horizon);
        // ~1000 expected updates.
        assert!((800..1_200).contains(&seq.len()), "len {}", seq.len());
    }

    #[test]
    fn live_game_matches_paper_scale() {
        let mut rng = SimRng::seed_from_u64(2);
        let seq = UpdateSequence::live_game(&mut rng);
        let total = GameConfig::default().total_length();
        assert_eq!(total, SimDuration::from_secs(8_760), "2 h 26 min");
        assert!(seq.last_update() <= SimTime::ZERO + total);
        assert!((250..370).contains(&seq.len()), "expected ≈306 snapshots, got {}", seq.len());
    }

    #[test]
    fn live_game_has_silent_break() {
        let mut rng = SimRng::seed_from_u64(3);
        let seq = UpdateSequence::live_game(&mut rng);
        // No updates inside the half-time break (3000 s – 3900 s).
        let in_break = seq.times().iter().filter(|t| (3_000..3_900).contains(&t.as_secs())).count();
        assert_eq!(in_break, 0, "break must be silent");
        // Plenty of updates during the first half.
        let in_half = seq.times().iter().filter(|t| (300..3_000).contains(&t.as_secs())).count();
        assert!(in_half > 80, "first half had only {in_half} updates");
    }

    #[test]
    fn silent_sequence() {
        let seq = UpdateSequence::silent();
        assert_eq!(seq.len(), 1);
        assert_eq!(seq.snapshot_at(SimTime::from_secs(1_000_000)), SnapshotId(0));
    }

    #[test]
    fn ecommerce_mixes_background_and_flash_sales() {
        let mut rng = SimRng::seed_from_u64(6);
        let horizon = SimTime::from_secs(86_400);
        let seq = UpdateSequence::ecommerce(horizon, &mut rng);
        // ~144 background updates + a few bursts of ~40 each.
        assert!((150..500).contains(&seq.len()), "len {}", seq.len());
        assert!(seq.times().windows(2).all(|w| w[0] < w[1]));
        assert!(seq.last_update() <= horizon + SimDuration::from_secs(61));
        // Burstiness: the minimum gap is far below the mean gap.
        let gaps: Vec<f64> =
            seq.times().windows(2).map(|w| w[1].since(w[0]).as_secs_f64()).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let min = gaps.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(min < mean / 20.0, "flash sales should compress gaps: min {min} mean {mean}");
    }

    #[test]
    fn auction_accelerates_towards_the_close() {
        let mut rng = SimRng::seed_from_u64(7);
        let close = SimTime::from_secs(3_600);
        let seq = UpdateSequence::auction(close, &mut rng);
        assert!(seq.len() > 10, "auction with only {} bids", seq.len());
        assert!(seq.times().windows(2).all(|w| w[0] < w[1]));
        assert!(seq.last_update() <= close);
        // More bids in the last 10 minutes than in the first 40.
        let early = seq.times().iter().filter(|t| t.as_secs() < 2_400).count();
        let late = seq.times().iter().filter(|t| t.as_secs() >= 3_000).count();
        assert!(late > early, "late {late} should exceed early {early}");
    }

    #[test]
    fn delayed_preserves_structure() {
        let mut rng = SimRng::seed_from_u64(9);
        let seq = UpdateSequence::periodic(SimDuration::from_secs(20), SimTime::from_secs(2_000));
        let origin = seq.delayed(3.43, &mut rng);
        assert_eq!(origin.len(), seq.len());
        assert_eq!(origin.times()[0], SimTime::ZERO);
        let mut total_lag = 0.0;
        for (a, b) in seq.times()[1..].iter().zip(&origin.times()[1..]) {
            assert!(b >= a, "delays never go backwards in time");
            total_lag += b.since(*a).as_secs_f64();
        }
        let mean_lag = total_lag / (seq.len() - 1) as f64;
        assert!((1.5..7.0).contains(&mean_lag), "mean lag {mean_lag} ≈ 3.43");
        // Strictly increasing is preserved.
        assert!(origin.times().windows(2).all(|w| w[0] < w[1]));
    }

    proptest! {
        /// snapshot_at is consistent with published_at/superseded_at.
        #[test]
        fn prop_lookup_consistent(gaps in proptest::collection::vec(1u64..1000, 1..50), q in 0u64..100_000) {
            let mut t = SimTime::ZERO;
            let mut times = vec![t];
            for g in gaps {
                t += SimDuration::from_secs(g);
                times.push(t);
            }
            let seq = UpdateSequence::from_times(times).unwrap();
            let q = SimTime::from_secs(q);
            let id = seq.snapshot_at(q);
            prop_assert!(seq.published_at(id) <= q);
            if let Some(sup) = seq.superseded_at(id) {
                prop_assert!(q < sup);
            }
        }
    }
}
