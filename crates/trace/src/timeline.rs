//! Ground-truth content timelines of CDN servers.
//!
//! The trace analysis (paper §3.6) concludes the measured CDN runs **TTL
//! polling over unicast**: each server independently re-fetches the content
//! from the provider every TTL (60 s), and every inconsistency cause the
//! paper breaks down perturbs that schedule:
//!
//! * fetches are delayed by provider-server propagation and provider
//!   processing (§3.4.3–3.4.4);
//! * fetches crossing ISP boundaries suffer extra congestion delay
//!   (§3.4.3);
//! * the provider's origin itself serves slightly stale content (§3.4.2);
//! * overloaded servers keep refreshing but sluggishly, in proportion to
//!   the episode length — including just before the overload (§3.4.5).
//!
//! [`build_server_timeline`] plays that process forward and yields the
//! server's content history — the hidden truth the crawl then samples.

use crate::snapshot::{SnapshotId, UpdateSequence};
use cdnc_net::AbsenceSchedule;
use cdnc_simcore::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Ground-truth behaviour of the measured CDN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthConfig {
    /// The CDN's content TTL (the paper infers 60 s).
    pub ttl: SimDuration,
    /// Mean staleness of the provider origin's own pipeline, seconds
    /// (paper §3.4.2 measures ≈ 3.43 s average origin inconsistency). This
    /// lag is *shared*: every server fetching at the same instant sees the
    /// same origin content, which is why it barely affects cross-server
    /// inconsistency (the α baseline shifts along with it).
    pub provider_staleness_mean_s: f64,
    /// Fixed fetch overhead: provider processing + transfer, seconds.
    pub fetch_base_s: f64,
    /// Signal speed for the provider-server hop, km/s.
    pub fibre_km_per_s: f64,
    /// Mean extra per-fetch delay when server and provider are in different
    /// ISPs, seconds (exponential; models inter-ISP congestion, §3.4.3).
    /// Kept sub-second: the paper's multi-second inter-ISP *increments*
    /// emerge from the α methodology (intra-cluster α is the min over few
    /// servers), not from per-fetch delay.
    pub inter_isp_mean_s: f64,
    /// Fetches issued within this window before an absence starts are lost
    /// to the overload and retried at recovery (§3.4.5's "about to be
    /// overloaded" effect).
    pub pre_absence_window_s: f64,
    /// Extra mean fetch delay while (or just before) a server is
    /// overloaded, per second of the episode's length (§3.4.5: an
    /// overloaded or just-recovered server "has a lower probability of
    /// sending or receiving update requests"; longer absences mean higher
    /// post-return inconsistency — Fig. 10(c)'s 38.1 s → 43.9 s trend over
    /// 0–400 s absences).
    pub recovery_slowdown_per_s: f64,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        GroundTruthConfig {
            ttl: SimDuration::from_secs(60),
            provider_staleness_mean_s: 3.43,
            fetch_base_s: 0.6,
            fibre_km_per_s: 200_000.0,
            inter_isp_mean_s: 0.5,
            pre_absence_window_s: 10.0,
            recovery_slowdown_per_s: 0.05,
        }
    }
}

/// A server's content history: which snapshot it serves at any instant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerTimeline {
    /// `(t, snapshot)` transitions, strictly increasing in `t`, starting at
    /// `(SimTime::ZERO, C0)`.
    transitions: Vec<(SimTime, SnapshotId)>,
}

impl ServerTimeline {
    /// Builds a timeline directly from transitions.
    ///
    /// # Panics
    ///
    /// Panics if `transitions` is empty, does not start at time zero, or is
    /// not strictly increasing in time.
    pub fn from_transitions(transitions: Vec<(SimTime, SnapshotId)>) -> Self {
        assert!(
            transitions.first().map(|&(t, _)| t) == Some(SimTime::ZERO),
            "timeline must start at time zero"
        );
        assert!(
            transitions.windows(2).all(|w| w[0].0 < w[1].0),
            "transitions must strictly increase in time"
        );
        ServerTimeline { transitions }
    }

    /// The snapshot the server serves at `t`.
    pub fn snapshot_at(&self, t: SimTime) -> SnapshotId {
        let idx = self.transitions.partition_point(|&(tt, _)| tt <= t);
        self.transitions[idx - 1].1
    }

    /// The transitions.
    pub fn transitions(&self) -> &[(SimTime, SnapshotId)] {
        &self.transitions
    }
}

/// Inputs describing one server for timeline construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerProfile {
    /// Dense server index (must match the absence schedule's node index).
    pub index: usize,
    /// Distance to the provider, km.
    pub distance_to_provider_km: f64,
    /// Whether the server's ISP differs from the provider's.
    pub crosses_isp: bool,
}

/// Plays forward the ground-truth TTL process for one server over
/// `[0, horizon]`.
///
/// `origin` is the provider origin's availability sequence — normally the
/// publish sequence shifted by the shared origin pipeline lag
/// ([`UpdateSequence::delayed`]); a fetch at time `t` obtains
/// `origin.snapshot_at(t)`.
///
/// The returned timeline starts with `C0` at time zero (the pre-game page is
/// cached everywhere before the session starts) and switches snapshots at
/// each fetch completion.
pub fn build_server_timeline(
    profile: &ServerProfile,
    origin: &UpdateSequence,
    absences: &AbsenceSchedule,
    config: &GroundTruthConfig,
    horizon: SimTime,
    rng: &mut SimRng,
) -> ServerTimeline {
    let mut transitions = vec![(SimTime::ZERO, SnapshotId(0))];
    let mut current = SnapshotId(0);
    // Servers start their TTL grids at independent random phases: each
    // server began caching when its first request happened to arrive.
    let mut next_fetch = SimTime::ZERO
        + SimDuration::from_secs_f64(rng.uniform_range(0.0, config.ttl.as_secs_f64()));
    while next_fetch <= horizon {
        let fetch_at = next_fetch;
        // An "absent" server is unreachable to *pollers* (overloaded, or its
        // front-end is down) but its internal refresh loop keeps running —
        // just sluggishly, in proportion to how bad the episode is. This is
        // why the paper measures only a modest inconsistency increase even
        // after 400 s absences (Fig. 10(c): 38.1 s → 43.9 s).
        let mut overload_penalty_s = 0.0;
        if let Some((start, end)) = absences.interval_at(profile.index, fetch_at) {
            overload_penalty_s = end.since(start).as_secs_f64() * config.recovery_slowdown_per_s;
        } else if let Some((start, end)) =
            upcoming_absence(absences, profile.index, fetch_at, config.pre_absence_window_s)
        {
            // Sliding into the overload: already degraded.
            debug_assert!(start >= fetch_at);
            overload_penalty_s = end.since(start).as_secs_f64() * config.recovery_slowdown_per_s;
        }
        // Fetch latency: processing + propagation (+ inter-ISP congestion).
        let mut delay_s = config.fetch_base_s
            + profile.distance_to_provider_km / config.fibre_km_per_s
            + rng.exponential(1.0 / 0.3); // response-time jitter, mean 0.3 s
        if profile.crosses_isp {
            delay_s += rng.exponential(1.0 / config.inter_isp_mean_s);
        }
        if overload_penalty_s > 0.0 {
            delay_s += rng.exponential(1.0 / overload_penalty_s.max(0.1));
        }
        let completed = fetch_at + SimDuration::from_secs_f64(delay_s);
        let fetched = origin.snapshot_at(fetch_at);
        if fetched > current && completed <= horizon {
            // Strictly-increasing guard: completions can reorder only if a
            // later fetch finished first, which the TTL grid prevents; the
            // max() keeps the invariant under extreme jitter anyway.
            let at = transitions.last().map(|&(t, _)| t).expect("non-empty");
            let t = completed.max(at + SimDuration::from_micros(1));
            transitions.push((t, fetched));
            current = fetched;
        }
        next_fetch = fetch_at + config.ttl;
    }
    ServerTimeline::from_transitions(transitions)
}

/// If an absence of `node` starts within `window_s` seconds after `t`,
/// returns that absence interval.
fn upcoming_absence(
    absences: &AbsenceSchedule,
    node: usize,
    t: SimTime,
    window_s: f64,
) -> Option<(SimTime, SimTime)> {
    let window_end = t + SimDuration::from_secs_f64(window_s);
    let ints = absences.intervals(node);
    let idx = ints.partition_point(|&(start, _)| start <= t);
    ints.get(idx).copied().filter(|&(start, _)| start <= window_end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdnc_net::AbsenceConfig;
    use cdnc_simcore::SimRng;

    fn profile() -> ServerProfile {
        ServerProfile { index: 0, distance_to_provider_km: 1_000.0, crosses_isp: false }
    }

    fn updates_every_30s() -> UpdateSequence {
        UpdateSequence::periodic(SimDuration::from_secs(30), SimTime::from_secs(3_000))
    }

    #[test]
    fn timeline_monotone_in_time_and_version() {
        let mut rng = SimRng::seed_from_u64(1);
        let tl = build_server_timeline(
            &profile(),
            &updates_every_30s(),
            &AbsenceSchedule::always_present(1),
            &GroundTruthConfig::default(),
            SimTime::from_secs(3_600),
            &mut rng,
        );
        for w in tl.transitions().windows(2) {
            assert!(w[0].0 < w[1].0, "time must strictly increase");
            assert!(w[0].1 < w[1].1, "snapshot must strictly increase");
        }
    }

    #[test]
    fn staleness_bounded_by_ttl_plus_slack() {
        // Without absences or ISP crossing, a server's staleness at any
        // instant is ≲ TTL + fetch delay + origin lag.
        let mut rng = SimRng::seed_from_u64(2);
        let updates = updates_every_30s();
        let tl = build_server_timeline(
            &profile(),
            &updates,
            &AbsenceSchedule::always_present(1),
            &GroundTruthConfig::default(),
            SimTime::from_secs(3_000),
            &mut rng,
        );
        // Sample every second in the steady state.
        for s in 200..2_800 {
            let t = SimTime::from_secs(s);
            let served = tl.snapshot_at(t);
            let fresh = updates.snapshot_at(t);
            let staleness = t.since(updates.published_at(served.next().min(fresh)));
            if fresh > served {
                assert!(
                    staleness.as_secs() <= 60 + 45,
                    "staleness {staleness} at t={s}s exceeds TTL + slack"
                );
            }
        }
    }

    #[test]
    fn overloaded_servers_refresh_sluggishly() {
        // An absent server keeps refreshing (it is only unreachable to
        // pollers) but with a delay that grows with the episode length, so
        // content adopted around long absences lags more.
        let cfg = AbsenceConfig {
            mean_gap_s: 900.0,
            min_len_s: 250.0,
            body_mean_s: 100.0,
            tail_prob: 0.0,
            max_len_s: 400.0,
            ..AbsenceConfig::default()
        };
        let updates =
            UpdateSequence::periodic(SimDuration::from_secs(30), SimTime::from_secs(60_000));
        let mut lag_in = (0.0, 0u32);
        let mut lag_out = (0.0, 0u32);
        for seed in 0..12 {
            let mut rng = SimRng::seed_from_u64(seed);
            let sched = AbsenceSchedule::generate(1, SimTime::from_secs(60_000), &cfg, &mut rng);
            assert!(!sched.intervals(0).is_empty(), "expected absences");
            let tl = build_server_timeline(
                &profile(),
                &updates,
                &sched,
                &GroundTruthConfig::default(),
                SimTime::from_secs(60_000),
                &mut rng,
            );
            for &(t, snap) in tl.transitions().iter().skip(1) {
                let lag = t.since(updates.published_at(snap)).as_secs_f64();
                if sched.is_absent(0, t) {
                    lag_in.0 += lag;
                    lag_in.1 += 1;
                } else {
                    lag_out.0 += lag;
                    lag_out.1 += 1;
                }
            }
        }
        assert!(lag_in.1 > 0, "some adoptions must happen during absences");
        let mean_in = lag_in.0 / lag_in.1 as f64;
        let mean_out = lag_out.0 / lag_out.1 as f64;
        assert!(
            mean_in > mean_out + 1.0,
            "overload must slow refreshes: in {mean_in} vs out {mean_out}"
        );
    }

    #[test]
    fn inter_isp_fetches_are_slower_on_average() {
        let updates =
            UpdateSequence::periodic(SimDuration::from_secs(30), SimTime::from_secs(30_000));
        let avg_staleness = |crosses: bool, seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            let prof =
                ServerProfile { index: 0, distance_to_provider_km: 1_000.0, crosses_isp: crosses };
            let tl = build_server_timeline(
                &prof,
                &updates,
                &AbsenceSchedule::always_present(1),
                &GroundTruthConfig::default(),
                SimTime::from_secs(30_000),
                &mut rng,
            );
            // Mean lag between publish and adoption of each adopted snapshot.
            let mut total = 0.0;
            let mut n = 0;
            for &(t, snap) in tl.transitions().iter().skip(1) {
                total += t.since(updates.published_at(snap)).as_secs_f64();
                n += 1;
            }
            total / n as f64
        };
        let mut intra_sum = 0.0;
        let mut inter_sum = 0.0;
        for seed in 0..16 {
            intra_sum += avg_staleness(false, seed);
            inter_sum += avg_staleness(true, seed);
        }
        assert!(
            inter_sum > intra_sum + 2.0,
            "inter-ISP adoption lag {inter_sum} should exceed intra {intra_sum} by ~0.5s×16"
        );
    }

    #[test]
    fn snapshot_at_before_first_fetch_is_initial() {
        let mut rng = SimRng::seed_from_u64(5);
        let tl = build_server_timeline(
            &profile(),
            &updates_every_30s(),
            &AbsenceSchedule::always_present(1),
            &GroundTruthConfig::default(),
            SimTime::from_secs(600),
            &mut rng,
        );
        assert_eq!(tl.snapshot_at(SimTime::ZERO), SnapshotId(0));
    }

    #[test]
    #[should_panic(expected = "start at time zero")]
    fn from_transitions_validates_start() {
        ServerTimeline::from_transitions(vec![(SimTime::from_secs(1), SnapshotId(0))]);
    }
}
