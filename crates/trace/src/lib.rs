//! # cdnc-trace
//!
//! The measurement substrate: everything needed to reconstruct the paper's
//! 15-day crawl of live sports-game pages on a major CDN (§3.1) — as a
//! simulation with known ground truth.
//!
//! The paper's original artifact is a proprietary trace. We substitute a
//! *synthetic crawl*: a ground-truth CDN that behaves exactly as the paper
//! deduces the real one does (TTL-60 polling over unicast, §3.6), perturbed
//! by each measured inconsistency cause (§3.4), crawled by observers exactly
//! as §3.1 describes. Because the pipeline only consumes poll records, every
//! downstream analysis runs unchanged — and can be validated against the
//! known ground truth.
//!
//! Modules:
//!
//! * [`snapshot`] — content update sequences (the live-game day: 306
//!   snapshots over 2 h 26 min, bursts + breaks);
//! * [`timeline`] — ground-truth per-server content histories under TTL
//!   polling with fetch delays, origin staleness, inter-ISP congestion and
//!   absences;
//! * [`skew`] — server clock skew and the crawler's RTT/2 correction;
//! * [`dns`] — end-user server assignment with cache expiry and
//!   load-balanced reassignment;
//! * [`crawl`](crate::crawl()) — the orchestrator producing a [`Trace`];
//! * [`records`] — the trace record types the analysis consumes.
//!
//! # Examples
//!
//! ```
//! use cdnc_trace::{crawl, CrawlConfig};
//!
//! let trace = crawl(&CrawlConfig { servers: 10, users: 5, days: 1, ..CrawlConfig::tiny() });
//! assert_eq!(trace.days.len(), 1);
//! assert!(trace.total_server_polls() > 0);
//! ```

pub mod codec;
pub mod crawl;
pub mod dns;
pub mod records;
pub mod skew;
pub mod snapshot;
pub mod timeline;

pub use codec::{read_trace, write_trace};
pub use crawl::{crawl, crawl_par, crawl_with_obs, crawl_with_obs_par, CrawlConfig};
pub use dns::DnsConfig;
pub use records::{DayTrace, ProviderPoll, ServerMeta, ServerPoll, Trace, UserMeta, UserPoll};
pub use skew::SkewConfig;
pub use snapshot::{GameConfig, GamePhase, SnapshotId, UpdateSequence};
pub use timeline::{build_server_timeline, GroundTruthConfig, ServerProfile, ServerTimeline};
