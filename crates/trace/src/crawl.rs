//! The crawl simulator: produces a measurement trace of the ground-truth CDN.
//!
//! This reproduces the paper's §3.1 methodology end-to-end:
//!
//! 1. a ground-truth CDN of N servers runs **TTL-60 polling over unicast**
//!    (what §3.6 deduces the real CDN does), perturbed by every §3.4 cause:
//!    origin staleness, fetch delays, inter-ISP congestion, absences;
//! 2. measurement observers poll each server's live-game page every 10 s for
//!    a daily session, recording the served snapshot and the server's own
//!    (skewed) GMT timestamp;
//! 3. a chosen observer estimates each server's clock skew via RTT/2;
//! 4. 200 simulated end-users fetch the page through DNS with cache expiry
//!    and load-balanced reassignment (§3.3);
//! 5. the provider's origin replicas are crawled the same way (§3.4.2).
//!
//! The output [`Trace`] is exactly what `cdnc-analysis` consumes; because the
//! ground truth is known, every analysis can be validated against it (e.g.
//! TTL inference must recover 60 s).

use crate::dns::{assignment_timeline, DnsConfig};
use crate::records::{DayTrace, ProviderPoll, ServerMeta, ServerPoll, Trace, UserMeta, UserPoll};
use crate::skew::SkewConfig;
use crate::snapshot::{GameConfig, UpdateSequence};
use crate::timeline::{build_server_timeline, GroundTruthConfig, ServerProfile, ServerTimeline};
use cdnc_geo::{GeoPoint, WorldBuilder};
use cdnc_net::{AbsenceConfig, AbsenceSchedule};
use cdnc_obs::Registry;
use cdnc_par::Pool;
use cdnc_simcore::{derive_stream, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Full configuration of a crawl.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrawlConfig {
    /// Number of content servers to crawl (paper: 3000; scale to taste).
    pub servers: usize,
    /// Number of simulated end-users / observers (paper: 200).
    pub users: usize,
    /// Number of provider origin replicas (paper found 10 provider IPs,
    /// collocated; 4 is enough to exercise the methodology).
    pub provider_replicas: u32,
    /// Number of crawl days (paper: 15).
    pub days: u16,
    /// Poll interval (paper: 10 s).
    pub poll_interval: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Ground-truth CDN behaviour.
    pub ground_truth: GroundTruthConfig,
    /// Server absence process.
    pub absence: AbsenceConfig,
    /// End-user DNS behaviour.
    pub dns: DnsConfig,
    /// Clock-skew process.
    pub skew: SkewConfig,
    /// Daily game structure.
    pub game: GameConfig,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            servers: 300,
            users: 200,
            provider_replicas: 4,
            days: 15,
            poll_interval: SimDuration::from_secs(10),
            seed: 0,
            ground_truth: GroundTruthConfig::default(),
            absence: AbsenceConfig::default(),
            dns: DnsConfig::default(),
            skew: SkewConfig::default(),
            game: GameConfig::default(),
        }
    }
}

impl CrawlConfig {
    /// A small configuration for unit/integration tests: 2 days, 40 servers,
    /// 25 users.
    pub fn tiny() -> Self {
        CrawlConfig { servers: 40, users: 25, days: 2, ..CrawlConfig::default() }
    }

    /// The daily session length (the game day's total length).
    pub fn session(&self) -> SimDuration {
        self.game.total_length()
    }
}

/// Runs the crawl and returns the trace.
///
/// Deterministic in `config` (including the seed).
///
/// # Panics
///
/// Panics if `config.servers`, `config.users`, `config.days` or
/// `config.provider_replicas` is zero.
pub fn crawl(config: &CrawlConfig) -> Trace {
    crawl_with_obs(config, &Registry::disabled())
}

/// Runs the crawl sharded over `pool`'s workers.
///
/// Bit-identical to [`crawl`] for any pool size: each per-server,
/// per-replica and per-user stream is derived from its index via
/// [`derive_stream`], and results commit in task-index order.
pub fn crawl_par(config: &CrawlConfig, pool: &Pool) -> Trace {
    crawl_with_obs_par(config, &Registry::disabled(), pool)
}

/// Runs the crawl with instrumentation recording into `obs`.
///
/// Observation-only: the returned [`Trace`] is identical whether `obs` is
/// enabled or disabled. Records poll counts per poll family, polls skipped
/// while servers were absent, and the RTT/2 skew-correction residual.
pub fn crawl_with_obs(config: &CrawlConfig, obs: &Registry) -> Trace {
    crawl_with_obs_par(config, obs, &Pool::serial())
}

/// [`crawl_with_obs`] sharded over `pool`'s workers; trace *and* recorded
/// metrics are bit-identical to the serial run (per-task counts are folded
/// into `obs` in task-index order after each parallel section).
pub fn crawl_with_obs_par(config: &CrawlConfig, obs: &Registry, pool: &Pool) -> Trace {
    // Allocation attribution: trace synthesis (timelines, observations)
    // lands in the `trace` bucket. Worker threads run untagged (their spawn
    // cost is `other`), which is fine — the crawl's own big allocations
    // happen on this thread when shard results are committed.
    let _prof = cdnc_obs::profile::scope(cdnc_obs::profile::Subsystem::Trace);
    assert!(config.servers > 0, "need at least one server");
    assert!(config.users > 0, "need at least one user");
    assert!(config.days > 0, "need at least one day");
    assert!(config.provider_replicas > 0, "need at least one provider replica");
    let obs_server_polls = obs.counter("crawl_server_polls");
    let obs_provider_polls = obs.counter("crawl_provider_polls");
    let obs_user_polls = obs.counter("crawl_user_polls");
    let obs_absent_skips = obs.counter("crawl_absent_poll_skips");
    let obs_skew_corrections = obs.counter("crawl_skew_corrections");
    let obs_skew_residual = obs.histogram("crawl_skew_residual_s");
    let world_span = obs.span("crawl_world");
    let mut master = SimRng::seed_from_u64(config.seed ^ 0x4352_4157_4c21); // "CRAWL!"
    let session = config.session();
    let horizon = SimTime::ZERO + session;

    // --- Static world -----------------------------------------------------
    let server_world = WorldBuilder::new(config.servers).seed(config.seed ^ 0xA1).build();
    let user_world = WorldBuilder::new(config.users).seed(config.seed ^ 0xB2).build();
    let provider_location = server_world.provider_location();

    // The provider's ISP: the ISP of the server closest to it (the origin
    // sits in an Atlanta ISP some servers share).
    let provider_isp = server_world
        .nodes()
        .iter()
        .min_by(|a, b| {
            a.location
                .distance_km(&provider_location)
                .partial_cmp(&b.location.distance_km(&provider_location))
                .expect("finite")
        })
        .expect("at least one server")
        .isp;

    let users: Vec<UserMeta> = user_world
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, n)| UserMeta { id: i as u32, location: n.location })
        .collect();

    // Skew measurement observer (paper: "we randomly chose a PlanetLab node
    // n_i").
    let observer = users[0].location;
    let mut skew_rng = master.fork();
    let servers: Vec<ServerMeta> = server_world
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let true_skew_us = config.skew.draw_true_skew_us(&mut skew_rng);
            let rtt = SimDuration::from_secs_f64(
                2.0 * (0.010 + n.location.distance_km(&observer) / 200_000.0),
            );
            let measured_skew_us = config.skew.measure_skew_us(true_skew_us, rtt, &mut skew_rng);
            obs_skew_corrections.inc();
            obs_skew_residual.record((measured_skew_us - true_skew_us).abs() as f64 * 1e-6);
            ServerMeta {
                id: i as u32,
                location: n.location,
                isp: n.isp,
                distance_to_provider_km: n.location.distance_km(&provider_location),
                true_skew_us,
                measured_skew_us,
            }
        })
        .collect();

    drop(world_span);

    // --- Per-day crawl ----------------------------------------------------
    let days_span = obs.span("crawl_days");
    let mut days = Vec::with_capacity(config.days as usize);
    for day in 0..config.days {
        let mut day_rng = master.fork();
        let updates = UpdateSequence::live_game_with(&config.game, &mut day_rng);
        // The origin pipeline: every update becomes available at the origin
        // a few seconds after the real-world event, shared by all fetchers.
        let origin =
            updates.delayed(config.ground_truth.provider_staleness_mean_s, &mut day_rng.fork());
        let absences = AbsenceSchedule::generate(
            config.servers,
            horizon,
            &config.absence,
            &mut day_rng.fork(),
        );

        // Ground-truth timelines, sharded across servers: server `i` draws
        // from the stream the i-th serial `day_rng.fork()` would have been,
        // so any pool size reproduces the serial timelines bit-for-bit.
        let day_seed = day_rng.seed();
        let base = day_rng.next_fork_index();
        let timelines: Vec<ServerTimeline> = pool.map_slice(&servers, |i, meta| {
            let profile = ServerProfile {
                index: meta.id as usize,
                distance_to_provider_km: meta.distance_to_provider_km,
                crosses_isp: meta.isp != provider_isp,
            };
            build_server_timeline(
                &profile,
                &origin,
                &absences,
                &config.ground_truth,
                horizon,
                &mut derive_stream(day_seed, base + i as u64),
            )
        });
        day_rng.skip_forks(servers.len() as u64);

        // Server polls, sharded the same way. Workers count locally and the
        // counts fold into `obs` in task order after the join, keeping the
        // registry off the hot path and merged metrics equal to serial.
        let base = day_rng.next_fork_index();
        let shards = pool.map_slice(&servers, |i, meta| {
            let mut poll_rng = derive_stream(day_seed, base + i as u64);
            // Each server is polled by its nearest observer (paper §3.1).
            let observer = nearest_user(&users, &meta.location);
            let rtt_base = 2.0 * (0.010 + meta.location.distance_km(&observer) / 200_000.0);
            let mut polls = Vec::new();
            let mut skipped = 0u64;
            let mut t = SimTime::ZERO;
            while t <= horizon {
                if absences.is_absent(meta.id as usize, t) {
                    skipped += 1;
                } else {
                    let response_time = SimDuration::from_secs_f64(
                        rtt_base + 0.04 + poll_rng.exponential(1.0 / 0.05),
                    );
                    // The server stamps its GMT clock upon receiving the
                    // query (about half the response time after t).
                    let stamped = t + SimDuration::from_secs_f64(rtt_base / 2.0);
                    let reported_gmt_us = stamped.as_micros() as i64 + meta.true_skew_us;
                    polls.push(ServerPoll {
                        server: meta.id,
                        time: t,
                        reported_gmt_us,
                        snapshot: timelines[meta.id as usize].snapshot_at(t),
                        response_time,
                    });
                }
                t += config.poll_interval;
            }
            (polls, skipped)
        });
        day_rng.skip_forks(servers.len() as u64);
        let mut server_polls = Vec::new();
        for (polls, skipped) in shards {
            obs_server_polls.add(polls.len() as u64);
            obs_absent_skips.add(skipped);
            server_polls.extend(polls);
        }

        // Provider origin polls (paper §3.4.2 and Fig. 10(a)). Each replica
        // of the origin runs its own copy of the availability pipeline, so
        // replicas disagree by a few seconds — the Fig. 7 inconsistency.
        let base = day_rng.next_fork_index();
        let shards = pool.map(config.provider_replicas as usize, |r| {
            let mut prov_rng = derive_stream(day_seed, base + r as u64);
            let replica_origin =
                updates.delayed(config.ground_truth.provider_staleness_mean_s, &mut prov_rng);
            let mut polls = Vec::new();
            let mut t = SimTime::ZERO;
            while t <= horizon {
                let response_time =
                    SimDuration::from_secs_f64((0.5 + prov_rng.exponential(1.0 / 0.35)).min(2.1));
                polls.push(ProviderPoll {
                    replica: r as u32,
                    time: t,
                    snapshot: replica_origin.snapshot_at(t),
                    response_time,
                });
                t += config.poll_interval;
            }
            polls
        });
        day_rng.skip_forks(u64::from(config.provider_replicas));
        let mut provider_polls = Vec::new();
        for polls in shards {
            obs_provider_polls.add(polls.len() as u64);
            provider_polls.extend(polls);
        }

        // End-user polls through DNS (paper §3.3).
        let base = day_rng.next_fork_index();
        let shards = pool.map_slice(&users, |u, user| {
            let mut user_rng = derive_stream(day_seed, base + u as u64);
            let assignment =
                assignment_timeline(&user.location, &servers, horizon, &config.dns, &mut user_rng);
            let mut polls = Vec::new();
            let mut t = SimTime::ZERO;
            while t <= horizon {
                let server = assignment.server_at(t);
                polls.push(UserPoll {
                    user: user.id,
                    time: t,
                    server,
                    snapshot: timelines[server as usize].snapshot_at(t),
                });
                t += config.poll_interval;
            }
            polls
        });
        day_rng.skip_forks(users.len() as u64);
        let mut user_polls = Vec::new();
        for polls in shards {
            obs_user_polls.add(polls.len() as u64);
            user_polls.extend(polls);
        }

        days.push(DayTrace { day, updates, server_polls, provider_polls, user_polls });
    }
    drop(days_span);

    Trace {
        servers,
        users,
        provider_isp,
        provider_location,
        poll_interval: config.poll_interval,
        session,
        days,
    }
}

/// Location of the user closest to `location`.
fn nearest_user(users: &[UserMeta], location: &GeoPoint) -> GeoPoint {
    users
        .iter()
        .min_by(|a, b| {
            a.location
                .distance_km(location)
                .partial_cmp(&b.location.distance_km(location))
                .expect("finite")
        })
        .expect("at least one user")
        .location
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotId;

    fn tiny_trace() -> Trace {
        crawl(&CrawlConfig::tiny())
    }

    #[test]
    fn trace_dimensions_match_config() {
        let cfg = CrawlConfig::tiny();
        let trace = crawl(&cfg);
        assert_eq!(trace.servers.len(), cfg.servers);
        assert_eq!(trace.users.len(), cfg.users);
        assert_eq!(trace.days.len(), cfg.days as usize);
        let polls_per_session = cfg.session().as_secs() / cfg.poll_interval.as_secs() + 1;
        for day in &trace.days {
            // Absences remove some polls, but never more than a few percent.
            let expected = cfg.servers as u64 * polls_per_session;
            assert!(day.server_polls.len() as u64 <= expected);
            assert!(day.server_polls.len() as u64 > expected * 9 / 10);
            assert_eq!(day.user_polls.len() as u64, cfg.users as u64 * polls_per_session);
            assert_eq!(
                day.provider_polls.len() as u64,
                u64::from(cfg.provider_replicas) * polls_per_session
            );
        }
    }

    #[test]
    fn crawl_is_deterministic() {
        let a = tiny_trace();
        let b = tiny_trace();
        assert_eq!(a, b);
        let c = crawl(&CrawlConfig { seed: 1, ..CrawlConfig::tiny() });
        assert_ne!(a, c);
    }

    /// The tentpole determinism contract: any worker count yields the same
    /// trace *and* the same recorded metrics as the serial crawl.
    #[test]
    fn parallel_crawl_is_bit_identical_to_serial() {
        let cfg = CrawlConfig::tiny();
        let serial_reg = Registry::enabled();
        let serial = crawl_with_obs(&cfg, &serial_reg);
        for jobs in [2usize, 5] {
            let reg = Registry::enabled();
            let trace = crawl_with_obs_par(&cfg, &reg, &Pool::new(jobs));
            assert_eq!(trace, serial, "jobs={jobs}");
            let (a, b) = (serial_reg.snapshot(), reg.snapshot());
            assert_eq!(a.counters, b.counters, "jobs={jobs}");
            assert_eq!(a.histograms, b.histograms, "jobs={jobs}");
        }
        assert_eq!(crawl_par(&cfg, &Pool::new(3)), serial);
    }

    #[test]
    fn server_polls_sorted_per_server() {
        let trace = tiny_trace();
        for day in &trace.days {
            for w in day.server_polls.windows(2) {
                assert!(
                    (w[0].server, w[0].time) < (w[1].server, w[1].time),
                    "polls must be (server, time)-sorted"
                );
            }
        }
    }

    #[test]
    fn served_snapshots_never_exceed_published() {
        let trace = tiny_trace();
        for day in &trace.days {
            let latest = SnapshotId((day.updates.len() - 1) as u32);
            for p in &day.server_polls {
                assert!(p.snapshot <= latest);
                // A server can never serve content newer than published at
                // poll time.
                assert!(p.snapshot <= day.updates.snapshot_at(p.time));
            }
        }
    }

    #[test]
    fn servers_do_lag_behind_the_provider() {
        // The whole point of the measurement: a TTL-60 CDN shows stale
        // content. A healthy fraction of mid-game polls must lag.
        let trace = tiny_trace();
        let day = &trace.days[0];
        let mut stale = 0u64;
        let mut total = 0u64;
        for p in &day.server_polls {
            // Mid-game only (first half: 300 s – 3000 s).
            if (300..3_000).contains(&p.time.as_secs()) {
                total += 1;
                if p.snapshot < day.updates.snapshot_at(p.time) {
                    stale += 1;
                }
            }
        }
        let frac = stale as f64 / total as f64;
        assert!(
            (0.3..0.99).contains(&frac),
            "expected substantial staleness under 18 s update gaps with TTL 60, got {frac}"
        );
    }

    #[test]
    fn reported_gmt_carries_skew() {
        let trace = tiny_trace();
        let day = &trace.days[0];
        for p in day.server_polls.iter().take(500) {
            let meta = trace.server(p.server);
            let raw = p.reported_gmt_us - p.time.as_micros() as i64;
            // Raw offset ≈ true skew (+ up to ~0.3 s of stamping delay).
            assert!(
                (raw - meta.true_skew_us).abs() < 400_000,
                "raw offset {raw} vs skew {}",
                meta.true_skew_us
            );
            // Corrected time ≈ true poll time (within skew-estimate error).
            let corrected = p.corrected_time(meta);
            let err = corrected.as_micros() as i64 - p.time.as_micros() as i64;
            assert!(err.abs() < 3_000_000, "corrected-time residual {err} µs");
        }
    }

    #[test]
    fn provider_polls_are_fresh() {
        let trace = tiny_trace();
        let day = &trace.days[0];
        let mut lag_sum = 0.0;
        let mut n = 0u64;
        for p in &day.provider_polls {
            let fresh = day.updates.snapshot_at(p.time);
            assert!(p.snapshot <= fresh);
            if p.snapshot < fresh {
                let published_next = day.updates.published_at(SnapshotId(p.snapshot.0 + 1));
                lag_sum += p.time.since(published_next).as_secs_f64();
                n += 1;
            }
            assert!(p.response_time.as_secs_f64() <= 2.1 + 1e-9);
            assert!(p.response_time.as_secs_f64() >= 0.5);
        }
        if n > 0 {
            let mean_lag = lag_sum / n as f64;
            assert!(mean_lag < 15.0, "origin staleness should be small, got {mean_lag}");
        }
    }

    #[test]
    fn user_polls_follow_assignments() {
        let trace = tiny_trace();
        let day = &trace.days[0];
        // Users must be redirected sometimes, and servers must be valid ids.
        let mut redirects = 0u64;
        for user in 0..trace.users.len() as u32 {
            let polls: Vec<&UserPoll> = day.polls_of_user(user).collect();
            assert!(!polls.is_empty());
            for w in polls.windows(2) {
                if w[0].server != w[1].server {
                    redirects += 1;
                }
            }
            for p in &polls {
                assert!((p.server as usize) < trace.servers.len());
            }
        }
        assert!(redirects > 0, "DNS must redirect users occasionally");
    }

    #[test]
    fn crawl_instrumentation_is_observation_only() {
        let cfg = CrawlConfig::tiny();
        let plain = crawl(&cfg);
        let reg = Registry::enabled();
        let observed = crawl_with_obs(&cfg, &reg);
        assert_eq!(plain, observed);

        let snap = reg.snapshot();
        let total_server_polls: u64 =
            observed.days.iter().map(|d| d.server_polls.len() as u64).sum();
        let total_user_polls: u64 = observed.days.iter().map(|d| d.user_polls.len() as u64).sum();
        assert_eq!(snap.counter("crawl_server_polls"), total_server_polls);
        assert_eq!(snap.counter("crawl_user_polls"), total_user_polls);
        assert_eq!(snap.counter("crawl_skew_corrections"), cfg.servers as u64);
        let residual = snap.histogram("crawl_skew_residual_s").expect("recorded");
        assert_eq!(residual.count, cfg.servers as u64);
    }
}
