//! Trace record types — what the measurement crawl produces.
//!
//! These mirror the data the paper's crawl gathered (§3.1): for every poll,
//! the snapshot of the statistics page plus the server's own GMT timestamp
//! (used to cancel network delay), and per-server metadata (geolocation, ISP,
//! clock-skew estimate). The analysis crate consumes exactly these records.

use crate::snapshot::{SnapshotId, UpdateSequence};
use cdnc_geo::{GeoPoint, IspId};
use cdnc_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Static metadata of one crawled content server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerMeta {
    /// Server index (dense, 0-based).
    pub id: u32,
    /// Geolocated position (paper: IPLOCATION lookup).
    pub location: GeoPoint,
    /// Serving ISP (paper: IPLOCATION + traceroute validation).
    pub isp: IspId,
    /// Great-circle distance to the content provider, km.
    pub distance_to_provider_km: f64,
    /// Ground-truth clock offset of the server's GMT clock, microseconds
    /// (positive = server clock runs ahead). Hidden from honest analyses —
    /// they must use [`ServerMeta::measured_skew_us`].
    pub true_skew_us: i64,
    /// The crawler's RTT/2-based estimate of the skew (paper §3.1:
    /// `ε = tG_sj − tG_ni − RTT/2`), microseconds.
    pub measured_skew_us: i64,
}

/// One poll of a content server by a measurement observer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerPoll {
    /// Which server was polled.
    pub server: u32,
    /// The observer's clock when the poll was issued (true simulation time).
    pub time: SimTime,
    /// The server's GMT clock at response time, microseconds — includes the
    /// server's skew; must be corrected with the measured skew before
    /// cross-server comparison.
    pub reported_gmt_us: i64,
    /// The snapshot served.
    pub snapshot: SnapshotId,
    /// Observer-measured response time of the poll.
    pub response_time: SimDuration,
}

impl ServerPoll {
    /// The poll's server-side timestamp corrected by the crawler's skew
    /// estimate — the timestamp all §3 analyses operate on.
    pub fn corrected_time(&self, meta: &ServerMeta) -> SimTime {
        debug_assert_eq!(meta.id, self.server, "meta/poll mismatch");
        SimTime::from_micros((self.reported_gmt_us - meta.measured_skew_us).max(0) as u64)
    }
}

/// One poll of a content-provider origin replica.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProviderPoll {
    /// Origin replica index (the paper found 10 provider IPs, collocated).
    pub replica: u32,
    /// Poll time.
    pub time: SimTime,
    /// The snapshot served by the origin.
    pub snapshot: SnapshotId,
    /// Observer-measured response time.
    pub response_time: SimDuration,
}

/// One poll by a simulated end-user through DNS (paper §3.3 methodology).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserPoll {
    /// Which user.
    pub user: u32,
    /// Poll time.
    pub time: SimTime,
    /// The server DNS directed the user to.
    pub server: u32,
    /// The snapshot that server returned.
    pub snapshot: SnapshotId,
}

/// Static metadata of one simulated end-user (PlanetLab observer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserMeta {
    /// User index.
    pub id: u32,
    /// Observer position.
    pub location: GeoPoint,
}

/// Everything crawled on one trace day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DayTrace {
    /// Day index (0-based).
    pub day: u16,
    /// Ground-truth update sequence of that day's game (the paper infers
    /// this from first appearances; we keep it for validation).
    pub updates: UpdateSequence,
    /// Server polls, ordered by (server, time).
    pub server_polls: Vec<ServerPoll>,
    /// Provider-origin polls, ordered by (replica, time).
    pub provider_polls: Vec<ProviderPoll>,
    /// End-user polls, ordered by (user, time).
    pub user_polls: Vec<UserPoll>,
}

impl DayTrace {
    /// Iterator over one server's polls for this day (they are stored
    /// contiguously, ordered by time).
    pub fn polls_of_server(&self, server: u32) -> impl Iterator<Item = &ServerPoll> + '_ {
        let start = self.server_polls.partition_point(|p| p.server < server);
        self.server_polls[start..].iter().take_while(move |p| p.server == server)
    }

    /// Iterator over one user's polls for this day.
    pub fn polls_of_user(&self, user: u32) -> impl Iterator<Item = &UserPoll> + '_ {
        let start = self.user_polls.partition_point(|p| p.user < user);
        self.user_polls[start..].iter().take_while(move |p| p.user == user)
    }
}

/// A complete multi-day crawl trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Crawled servers.
    pub servers: Vec<ServerMeta>,
    /// Measurement users.
    pub users: Vec<UserMeta>,
    /// The provider's ISP (for intra/inter-ISP splits).
    pub provider_isp: IspId,
    /// The provider's location.
    pub provider_location: GeoPoint,
    /// Poll interval used by the crawl.
    pub poll_interval: SimDuration,
    /// Length of each daily crawl session.
    pub session: SimDuration,
    /// Per-day records.
    pub days: Vec<DayTrace>,
}

impl Trace {
    /// Total number of server poll records across all days.
    pub fn total_server_polls(&self) -> usize {
        self.days.iter().map(|d| d.server_polls.len()).sum()
    }

    /// Metadata of one server.
    ///
    /// # Panics
    ///
    /// Panics if `server` is out of range.
    pub fn server(&self, server: u32) -> &ServerMeta {
        &self.servers[server as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poll(server: u32, secs: u64, snap: u32) -> ServerPoll {
        ServerPoll {
            server,
            time: SimTime::from_secs(secs),
            reported_gmt_us: SimTime::from_secs(secs).as_micros() as i64,
            snapshot: SnapshotId(snap),
            response_time: SimDuration::from_millis(100),
        }
    }

    #[test]
    fn corrected_time_subtracts_measured_skew() {
        let meta = ServerMeta {
            id: 0,
            location: GeoPoint::new(0.0, 0.0).unwrap(),
            isp: IspId(0),
            distance_to_provider_km: 0.0,
            true_skew_us: 5_000_000,
            measured_skew_us: 4_900_000,
        };
        let p = ServerPoll {
            reported_gmt_us: 105_000_000, // true 100 s + 5 s skew
            ..poll(0, 0, 0)
        };
        let corrected = p.corrected_time(&meta);
        // 105 s − 4.9 s = 100.1 s: residual error is the skew-estimate error.
        assert_eq!(corrected, SimTime::from_micros(100_100_000));
    }

    #[test]
    fn corrected_time_clamps_at_zero() {
        let meta = ServerMeta {
            id: 0,
            location: GeoPoint::new(0.0, 0.0).unwrap(),
            isp: IspId(0),
            distance_to_provider_km: 0.0,
            true_skew_us: 0,
            measured_skew_us: 10_000_000,
        };
        let p = poll(0, 1, 0);
        assert_eq!(p.corrected_time(&meta), SimTime::ZERO);
    }

    #[test]
    fn day_trace_per_server_iteration() {
        let day = DayTrace {
            day: 0,
            updates: UpdateSequence::silent(),
            server_polls: vec![poll(0, 0, 0), poll(0, 10, 0), poll(1, 0, 1), poll(2, 5, 2)],
            provider_polls: vec![],
            user_polls: vec![],
        };
        assert_eq!(day.polls_of_server(0).count(), 2);
        assert_eq!(day.polls_of_server(1).count(), 1);
        assert_eq!(day.polls_of_server(3).count(), 0);
        assert_eq!(day.polls_of_server(2).next().unwrap().snapshot, SnapshotId(2));
    }

    #[test]
    fn day_trace_per_user_iteration() {
        let day = DayTrace {
            day: 0,
            updates: UpdateSequence::silent(),
            server_polls: vec![],
            provider_polls: vec![],
            user_polls: vec![
                UserPoll { user: 0, time: SimTime::ZERO, server: 1, snapshot: SnapshotId(0) },
                UserPoll {
                    user: 2,
                    time: SimTime::from_secs(10),
                    server: 1,
                    snapshot: SnapshotId(0),
                },
            ],
        };
        assert_eq!(day.polls_of_user(0).count(), 1);
        assert_eq!(day.polls_of_user(1).count(), 0);
        assert_eq!(day.polls_of_user(2).count(), 1);
    }
}
