//! Server clock skew and the crawler's RTT/2 correction.
//!
//! Paper §3.1: "the GMT time may not be synchronized among all content
//! servers"; the crawler picks one observer `n_i`, polls each server `s_j`,
//! and estimates the skew `ε_{ni,sj} = tG_sj − tG_ni − RTT/2`. The estimate
//! is imperfect (path asymmetry, queueing on one direction), so corrected
//! timestamps carry a small residual error — we model that residual
//! explicitly.

use cdnc_simcore::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Parameters of the clock-skew process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkewConfig {
    /// Maximum absolute true clock offset, seconds. Real CDN servers run NTP
    /// but drift; tens of seconds of offset were plausible in 2012-era
    /// edge fleets.
    pub max_abs_s: f64,
    /// Standard deviation of the RTT/2 estimation residual, seconds.
    pub measurement_noise_s: f64,
}

impl Default for SkewConfig {
    fn default() -> Self {
        SkewConfig { max_abs_s: 20.0, measurement_noise_s: 0.25 }
    }
}

impl SkewConfig {
    /// Draws a server's true clock offset, microseconds.
    pub fn draw_true_skew_us(&self, rng: &mut SimRng) -> i64 {
        (rng.uniform_range(-self.max_abs_s, self.max_abs_s) * 1e6) as i64
    }

    /// The crawler's estimate of `true_skew_us` via the RTT/2 method: the
    /// truth plus a clamped-normal residual whose scale grows slightly with
    /// the RTT (longer paths are more asymmetric).
    pub fn measure_skew_us(&self, true_skew_us: i64, rtt: SimDuration, rng: &mut SimRng) -> i64 {
        let sigma = self.measurement_noise_s + 0.1 * rtt.as_secs_f64();
        let noise = rng.normal_clamped(0.0, sigma, -4.0 * sigma, 4.0 * sigma);
        true_skew_us + (noise * 1e6) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_skew_bounded() {
        let cfg = SkewConfig::default();
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let s = cfg.draw_true_skew_us(&mut rng);
            assert!(s.abs() <= (cfg.max_abs_s * 1e6) as i64);
        }
    }

    #[test]
    fn measurement_close_to_truth() {
        let cfg = SkewConfig::default();
        let mut rng = SimRng::seed_from_u64(2);
        let truth = 7_500_000i64; // +7.5 s
        let rtt = SimDuration::from_millis(120);
        let mut worst = 0i64;
        for _ in 0..1_000 {
            let est = cfg.measure_skew_us(truth, rtt, &mut rng);
            worst = worst.max((est - truth).abs());
        }
        // Residual bounded by 4σ ≈ 4 × (0.25 + 0.012) s.
        assert!(worst <= 1_100_000, "worst residual {worst} µs");
        assert!(worst > 10_000, "noise should actually perturb the estimate");
    }

    #[test]
    fn longer_rtt_means_noisier_estimate() {
        let cfg = SkewConfig::default();
        let spread = |rtt_ms: u64, seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            let rtt = SimDuration::from_millis(rtt_ms);
            let draws: Vec<f64> =
                (0..3_000).map(|_| cfg.measure_skew_us(0, rtt, &mut rng) as f64).collect();
            let mean = draws.iter().sum::<f64>() / draws.len() as f64;
            (draws.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / draws.len() as f64).sqrt()
        };
        assert!(spread(2_000, 3) > spread(10, 3));
    }
}
