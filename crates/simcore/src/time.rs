//! Simulated time.
//!
//! [`SimTime`] is an *instant* on the simulation clock and [`SimDuration`] is
//! a *span* between instants. Both count integer microseconds: the paper's
//! quantities range from sub-millisecond propagation delays to 15-day crawl
//! horizons, and microsecond ticks cover that range in a `u64` with room to
//! spare (≈ 584 000 years) while keeping event ordering exact.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulation clock, counted in microseconds since the
/// simulation epoch (time zero).
///
/// # Examples
///
/// ```
/// use cdnc_simcore::{SimDuration, SimTime};
///
/// let start = SimTime::ZERO;
/// let later = start + SimDuration::from_secs(60);
/// assert_eq!(later.as_secs_f64(), 60.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, counted in microseconds.
///
/// # Examples
///
/// ```
/// use cdnc_simcore::SimDuration;
///
/// let ttl = SimDuration::from_secs(60);
/// assert_eq!(ttl / 2, SimDuration::from_secs(30));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinite" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The span from `earlier` to `self`, or [`SimDuration::ZERO`] if
    /// `earlier` is after `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier > self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "since() across negative span");
        SimDuration(self.0 - earlier.0)
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// A span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// A span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// A span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// The span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// `true` if this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative float (e.g. a jitter factor).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor: {factor}");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_micros(MICROS_PER_SEC));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_secs(100);
        let d = SimDuration::from_millis(2_500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(t.since(SimTime::from_secs(40)), SimDuration::from_secs(60));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
    }

    #[test]
    fn float_conversions() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.as_micros(), 1_250_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
        let d = SimDuration::from_secs_f64(0.000_001);
        assert_eq!(d.as_micros(), 1);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(1.5), SimDuration::from_secs(15));
        assert_eq!(SimDuration::from_micros(3).mul_f64(0.5), SimDuration::from_micros(2));
        // banker's-free round
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = [1u64, 2, 3].into_iter().map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_rejected() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "t=1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimDuration::from_micros(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
