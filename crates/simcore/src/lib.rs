//! # cdnc-simcore
//!
//! Deterministic discrete-event simulation engine underpinning the whole
//! `cdn-live-consistency` workspace.
//!
//! The engine is intentionally small and fully deterministic:
//!
//! * [`SimTime`] / [`SimDuration`] — simulated instants and spans counted in
//!   integer microseconds, so no floating-point drift can creep into event
//!   ordering.
//! * [`EventQueue`] — a priority queue of `(SimTime, E)` pairs with *stable*
//!   FIFO tie-breaking, so two runs with the same seed produce bit-identical
//!   schedules.
//! * [`Scheduler`] — an event queue fused with a clock, the main driver loop
//!   used by the crawl simulator and the CDN evaluation simulator.
//! * [`SimRng`] — a seedable random source with the distribution helpers the
//!   paper's workloads need (uniform, exponential, bounded normal) and
//!   deterministic stream forking.
//! * [`stats`] — CDFs, percentiles, online mean/variance, Pearson correlation
//!   and RMSE: the estimators used throughout the paper's §3 analysis.
//!
//! # Examples
//!
//! ```
//! use cdnc_simcore::{Scheduler, SimDuration, SimTime};
//!
//! let mut sched: Scheduler<&str> = Scheduler::new();
//! sched.schedule_in(SimDuration::from_secs(10), "poll");
//! sched.schedule_in(SimDuration::from_secs(5), "update");
//! let (t, what) = sched.next().unwrap();
//! assert_eq!(what, "update");
//! assert_eq!(t, SimTime::from_secs(5));
//! ```

pub mod ckpt;
pub mod queue;
pub mod rng;
pub mod scheduler;
pub mod stats;
pub mod time;

pub use queue::EventQueue;
pub use rng::{derive_seed, derive_stream, stream_tag, SimRng};
pub use scheduler::Scheduler;
pub use time::{SimDuration, SimTime};
