//! A deterministic event queue.
//!
//! Wraps a binary heap of `(SimTime, sequence, E)` where `sequence` is a
//! monotonically increasing insertion counter. Events scheduled for the same
//! instant therefore pop in insertion order, which makes whole-simulation runs
//! reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events with stable FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use cdnc_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "b");
/// q.push(SimTime::from_secs(1), "a");
/// q.push(SimTime::from_secs(2), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Creates an empty queue with capacity for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(cap), next_seq: 0 }
    }

    /// Schedules `event` at `time`. Events at equal times pop in push order.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Ordered view of every pending entry as `(time, seq, event)` in pop
    /// order, plus the insertion counter. Feeding the triples (with cloned
    /// events) back through [`EventQueue::from_entries`] reproduces this
    /// queue exactly — including FIFO tie-breaking among equal timestamps —
    /// which is what checkpoint/restore needs for bit-identical replay.
    pub fn entries(&self) -> (Vec<(SimTime, u64, &E)>, u64) {
        let mut out: Vec<_> = self.heap.iter().map(|e| (e.time, e.seq, &e.event)).collect();
        out.sort_by_key(|&(time, seq, _)| (time, seq));
        (out, self.next_seq)
    }

    /// Rebuilds a queue from entry triples captured by [`EventQueue::entries`].
    /// Sequence numbers are reinstated verbatim so same-time events keep their
    /// original pop order, and fresh pushes continue from `next_seq`.
    ///
    /// # Panics
    ///
    /// Panics if an entry's `seq` is not below `next_seq` — such a queue could
    /// hand out a duplicate sequence number and break the FIFO invariant.
    pub fn from_entries(entries: Vec<(SimTime, u64, E)>, next_seq: u64) -> Self {
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for (time, seq, event) in entries {
            assert!(seq < next_seq, "entry seq {seq} not below next_seq {next_seq}");
            heap.push(Entry { time, seq, event });
        }
        EventQueue { heap, next_seq }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_time", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for secs in [5u64, 1, 9, 3, 7] {
            q.push(SimTime::from_secs(secs), secs);
        }
        let mut out = Vec::new();
        while let Some((t, e)) = q.pop() {
            assert_eq!(t.as_secs(), e);
            out.push(e);
        }
        assert_eq!(out, [1, 3, 5, 7, 9]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(4), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn entries_round_trip_preserves_pop_order() {
        let mut q = EventQueue::new();
        for (secs, tag) in [(2u64, "b"), (1, "a"), (2, "c"), (1, "d")] {
            q.push(SimTime::from_secs(secs), tag);
        }
        q.pop(); // consume "a" so restored seqs are non-contiguous
        let (entries, next_seq) = q.entries();
        assert_eq!(next_seq, 4);
        let owned: Vec<_> = entries.into_iter().map(|(t, s, e)| (t, s, *e)).collect();
        let mut restored = EventQueue::from_entries(owned, next_seq);
        restored.push(SimTime::from_secs(2), "e");
        let order: Vec<_> = std::iter::from_fn(|| restored.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["d", "b", "c", "e"], "tie order and fresh pushes survive");
    }

    #[test]
    #[should_panic(expected = "not below next_seq")]
    fn from_entries_rejects_stale_counter() {
        EventQueue::from_entries(vec![(SimTime::ZERO, 5, ())], 3);
    }

    proptest! {
        /// Popping always yields a non-decreasing time sequence, and within a
        /// timestamp the original insertion order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_secs(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(i > li, "FIFO violated within a timestamp");
                    }
                }
                last = Some((t, i));
            }
        }
    }
}
