//! Seeded randomness for simulations.
//!
//! [`SimRng`] wraps a [`rand::rngs::StdRng`] seeded from a `u64` and adds the
//! distribution helpers the paper's workloads need. Independent deterministic
//! sub-streams are derived with [`SimRng::fork`], so adding a random draw to
//! one component never perturbs another component's sequence.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A deterministic random source for simulation components.
///
/// # Examples
///
/// ```
/// use cdnc_simcore::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.uniform_f64(), b.uniform_f64());
/// ```
#[derive(Debug)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
    forks: u64,
}

/// The registry of top-level rng stream tags.
///
/// Each independent subsystem seeds its generator from
/// `config_seed ^ TAG`, so subsystems never share a stream and a new
/// subsystem can claim a tag here without perturbing any existing one.
/// These values are **frozen**: changing one changes every simulation
/// result downstream of it.
pub mod stream_tag {
    /// World/topology construction (`cdnc-core` geography).
    pub const WORLD: u64 = 0x51;
    /// The seed handed to the network substrate by the simulator.
    pub const NET: u64 = 0x52;
    /// Simulation event randomness (poll phases, user behaviour, failures).
    pub const SIM: u64 = 0x53;
    /// `cdnc-net::Network`'s internal latency jitter ("NETW").
    pub const NETWORK: u64 = 0x4e45_5457;
    /// The fault plane's per-node decision streams ("FALT").
    pub const FAULT: u64 = 0x4641_4c54;
    /// The request-plane workload (catalog, arrivals, caches) ("WORK").
    pub const WORKLOAD: u64 = 0x574f_524b;
    /// The node-lifecycle churn plane (stochastic crash-restart cycles)
    /// ("CHRN").
    pub const CHURN: u64 = 0x4348_524e;
}

/// SplitMix64 step — used to derive statistically independent fork seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seed of stream `index` split off a generator seeded with `seed`.
///
/// This is the *stable* stream-split function behind [`SimRng::fork`]: the
/// n-th fork of a generator seeded with `s` is exactly
/// `derive_stream(s, n)` with 1-based `n`. Parallel code uses it to give
/// task `i` its own stream from `(seed, i)` without threading a parent
/// generator through — so the stream a task draws from depends only on its
/// index, never on which thread runs it or in what order tasks complete.
pub fn derive_seed(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(index))
}

/// An independent deterministic generator for stream `index` of `seed`.
///
/// Equal `(seed, index)` pairs always yield the same stream; distinct
/// indices yield statistically independent streams (see [`derive_seed`]).
///
/// # Examples
///
/// ```
/// use cdnc_simcore::{derive_stream, SimRng};
///
/// // Stream identity is positional: fork #3 of a parent equals stream 3.
/// let mut parent = SimRng::seed_from_u64(7);
/// let (_, _, mut f3) = (parent.fork(), parent.fork(), parent.fork());
/// let mut s3 = derive_stream(7, 3);
/// assert_eq!(f3.uniform_f64(), s3.uniform_f64());
/// ```
pub fn derive_stream(seed: u64, index: u64) -> SimRng {
    SimRng::seed_from_u64(derive_seed(seed, index))
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed), seed, forks: 0 }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent deterministic sub-stream.
    ///
    /// The n-th fork of a generator seeded with `s` always yields the same
    /// stream, regardless of how many draws were taken from the parent.
    pub fn fork(&mut self) -> SimRng {
        self.forks += 1;
        derive_stream(self.seed, self.forks)
    }

    /// Advances the fork counter by `n` without creating generators, so a
    /// caller that derived streams `forks+1 ..= forks+n` out-of-band (via
    /// [`derive_stream`], e.g. one per parallel task) keeps later
    /// [`SimRng::fork`] calls aligned with the serial fork sequence.
    pub fn skip_forks(&mut self, n: u64) {
        self.forks += n;
    }

    /// The index the *next* [`SimRng::fork`] call will derive (1-based), i.e.
    /// the `index` argument [`derive_stream`] needs to reproduce it.
    pub fn next_fork_index(&self) -> u64 {
        self.forks + 1
    }

    /// A mid-stream snapshot: `(seed, forks, generator state words)`.
    /// Feeding it to [`SimRng::from_snapshot`] rebuilds a generator that
    /// continues this one's draw *and* fork sequences exactly.
    pub fn snapshot(&self) -> (u64, u64, [u64; 4]) {
        (self.seed, self.forks, self.inner.state())
    }

    /// Rebuilds a generator from a [`SimRng::snapshot`].
    pub fn from_snapshot(seed: u64, forks: u64, state: [u64; 4]) -> Self {
        SimRng { inner: StdRng::from_state(state), seed, forks }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        self.inner.random_range(0.0..1.0)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range [{lo}, {hi})");
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer draw in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() over an empty range");
        self.inner.random_range(0..n)
    }

    /// Uniform integer draw in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "bad integer range [{lo}, {hi}]");
        self.inner.random_range(lo..=hi)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.random_bool(p)
    }

    /// Exponential draw with the given rate (events per unit).
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0 && rate.is_finite(), "bad rate: {rate}");
        let u: f64 = self.inner.random_range(f64::MIN_POSITIVE..1.0);
        -u.ln() / rate
    }

    /// Normal draw via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0 && std_dev.is_finite(), "bad std dev: {std_dev}");
        let u1: f64 = self.inner.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.random_range(0.0..1.0);
        mean + std_dev * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw clamped to `[lo, hi]` — used for bounded latency jitter.
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        self.normal(mean, std_dev).clamp(lo, hi)
    }

    /// Pareto draw with scale `x_min` and shape `alpha` — heavy-tailed
    /// absence/overload durations.
    ///
    /// # Panics
    ///
    /// Panics if `x_min <= 0` or `alpha <= 0`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0, "bad pareto params ({x_min}, {alpha})");
        let u: f64 = self.inner.random_range(f64::MIN_POSITIVE..1.0);
        x_min / u.powf(1.0 / alpha)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Picks an index according to the given non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative value, or sums to 0.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weighted_index over empty weights");
        let total: f64 = weights.iter().inspect(|w| assert!(**w >= 0.0, "negative weight")).sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut x = self.uniform_range(0.0, total);
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Bounded-Zipf draw: a rank in `[0, n)` with `P(rank = k) ∝ (k+1)^-s`.
    ///
    /// Rank 0 is the most popular. Uses Hörmann–Derflinger
    /// rejection-inversion, so a draw costs O(1) expected time at any
    /// catalog size — no precomputed harmonic table, which keeps the
    /// sampler a pure function of the rng stream. `s = 0` degenerates to a
    /// uniform draw over the ranks; `s ≈ 0.6–1.2` covers the skews
    /// reported for CDN request popularity.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or not finite.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf() over an empty catalog");
        assert!(s >= 0.0 && s.is_finite(), "bad zipf exponent: {s}");
        if n == 1 {
            return 0;
        }
        let nf = n as f64;
        // H is an antiderivative of x^-s, H_inv its inverse; near s = 1 the
        // closed forms degenerate to ln/exp.
        let h = |x: f64| -> f64 {
            if (s - 1.0).abs() < 1e-9 {
                x.ln()
            } else {
                (x.powf(1.0 - s) - 1.0) / (1.0 - s)
            }
        };
        let h_inv = |u: f64| -> f64 {
            if (s - 1.0).abs() < 1e-9 {
                u.exp()
            } else {
                (1.0 + u * (1.0 - s)).powf(1.0 / (1.0 - s))
            }
        };
        let hx0 = h(0.5) - 1.0; // H(1/2) - f(1)
        let span = h(nf + 0.5) - hx0;
        let cutoff = 1.0 - h_inv(h(1.5) - 2f64.powf(-s));
        loop {
            let u = hx0 + self.uniform_f64() * span;
            let x = h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, nf);
            if k - x <= cutoff || u >= h(k + 0.5) - (-s * k.ln()).exp() {
                return k as usize - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.uniform_f64().to_bits(), b.uniform_f64().to_bits());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(1);
        // Consume from `a` before forking; fork streams must still match.
        for _ in 0..17 {
            a.uniform_f64();
        }
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..50 {
            assert_eq!(fa.uniform_f64().to_bits(), fb.uniform_f64().to_bits());
        }
    }

    #[test]
    fn successive_forks_differ() {
        let mut r = SimRng::seed_from_u64(9);
        let mut f1 = r.fork();
        let mut f2 = r.fork();
        let s1: Vec<u64> = (0..8).map(|_| f1.uniform_f64().to_bits()).collect();
        let s2: Vec<u64> = (0..8).map(|_| f2.uniform_f64().to_bits()).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut r = SimRng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean} far from 2.0");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::seed_from_u64(6);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| r.normal(10.0, 3.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.15);
        assert!((var.sqrt() - 3.0).abs() < 0.15);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = SimRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.weighted_index(&[1.0, 0.0, 3.0])] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pareto_lower_bound() {
        let mut r = SimRng::seed_from_u64(8);
        for _ in 0..1_000 {
            assert!(r.pareto(1.5, 1.2) >= 1.5);
        }
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn chance_rejects_bad_probability() {
        SimRng::seed_from_u64(0).chance(1.5);
    }

    #[test]
    fn derive_stream_matches_fork_sequence() {
        // The contract parallel code relies on: stream `i` of seed `s` is
        // bit-identical to the i-th fork of a generator seeded with `s`,
        // however much the parent was consumed in between.
        let mut parent = SimRng::seed_from_u64(99);
        for i in 1..=20u64 {
            parent.uniform_f64(); // consume: must not matter
            let mut forked = parent.fork();
            let mut derived = derive_stream(99, i);
            for _ in 0..10 {
                assert_eq!(forked.uniform_f64().to_bits(), derived.uniform_f64().to_bits());
            }
        }
    }

    #[test]
    fn derive_seed_is_stable() {
        // Pinned values: changing the derivation breaks every recorded
        // experiment seed, so it must be caught as a test failure, not
        // discovered as silently different figures.
        assert_eq!(derive_seed(42, 1), 9129838320742759465, "golden 42/1");
        assert_eq!(derive_seed(42, 2), 2139811525164838579, "golden 42/2");
        assert_eq!(derive_seed(0, 1), 6791897765849424158, "golden 0/1");
    }

    #[test]
    fn derived_streams_are_independent() {
        // Distinct indices decorrelate: across many streams, first draws
        // spread over [0,1) rather than clustering.
        let n = 2_000;
        let mean: f64 = (0..n).map(|i| derive_stream(5, i).uniform_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "first-draw mean {mean} far from 0.5");
        // And adjacent streams never collide.
        for i in 0..200 {
            assert_ne!(derive_seed(5, i), derive_seed(5, i + 1));
        }
    }

    #[test]
    fn zipf_shape_matches_the_power_law() {
        // 40k draws at s = 1: rank frequencies must fall off like 1/(k+1).
        // Check the first few rank ratios and that the most popular rank
        // dominates the tail.
        let mut r = SimRng::seed_from_u64(12);
        let n = 50;
        let mut counts = vec![0u64; n];
        for _ in 0..40_000 {
            counts[r.zipf(n, 1.0)] += 1;
        }
        let r01 = counts[0] as f64 / counts[1] as f64;
        assert!((r01 - 2.0).abs() < 0.3, "rank0/rank1 ratio {r01} far from 2");
        let r03 = counts[0] as f64 / counts[3] as f64;
        assert!((r03 - 4.0).abs() < 0.8, "rank0/rank3 ratio {r03} far from 4");
        assert!(counts[0] > counts[n - 1] * 10, "head must dominate the tail");
        // s = 0 is uniform: extreme ranks appear at comparable rates.
        let mut counts = [0u64; 10];
        for _ in 0..40_000 {
            counts[r.zipf(10, 0.0)] += 1;
        }
        let spread = *counts.iter().max().unwrap() as f64 / *counts.iter().min().unwrap() as f64;
        assert!(spread < 1.25, "s=0 must be near-uniform, spread {spread}");
    }

    #[test]
    fn zipf_single_rank_and_bounds() {
        let mut r = SimRng::seed_from_u64(13);
        assert_eq!(r.zipf(1, 1.2), 0);
        for _ in 0..5_000 {
            assert!(r.zipf(7, 0.8) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bad zipf exponent")]
    fn zipf_rejects_negative_exponent() {
        SimRng::seed_from_u64(0).zipf(5, -0.5);
    }

    proptest::proptest! {
        /// Seed stability: equal seeds reproduce the draw sequence exactly,
        /// whatever the catalog size and skew — the contract that makes the
        /// workload plane bit-identical across runs and worker counts.
        #[test]
        fn prop_zipf_is_seed_stable(seed in 0u64..1_000, n in 1usize..500,
                                    s in 0.0f64..2.5, draws in 1usize..64) {
            let mut a = SimRng::seed_from_u64(seed);
            let mut b = SimRng::seed_from_u64(seed);
            for _ in 0..draws {
                let (x, y) = (a.zipf(n, s), b.zipf(n, s));
                proptest::prop_assert_eq!(x, y);
                proptest::prop_assert!(x < n);
            }
        }
    }

    #[test]
    fn snapshot_resumes_draws_and_forks_exactly() {
        let mut a = SimRng::seed_from_u64(21);
        for _ in 0..37 {
            a.uniform_f64();
        }
        a.fork();
        let (seed, forks, state) = a.snapshot();
        let mut b = SimRng::from_snapshot(seed, forks, state);
        for _ in 0..64 {
            assert_eq!(a.uniform_f64().to_bits(), b.uniform_f64().to_bits());
        }
        assert_eq!(a.fork().uniform_f64().to_bits(), b.fork().uniform_f64().to_bits());
    }

    #[test]
    fn skip_forks_realigns_the_fork_sequence() {
        let mut a = SimRng::seed_from_u64(4);
        let mut b = SimRng::seed_from_u64(4);
        // `a` forks 5 times; `b` derives those streams out-of-band and
        // skips. Their next forks must agree.
        let forks: Vec<SimRng> = (0..5).map(|_| a.fork()).collect();
        let fifth = forks.into_iter().next_back();
        assert_eq!(b.next_fork_index(), 1);
        let mut derived5 = derive_stream(4, 5);
        b.skip_forks(5);
        assert_eq!(b.next_fork_index(), 6);
        assert_eq!(
            fifth.unwrap().uniform_f64().to_bits(),
            derived5.uniform_f64().to_bits(),
            "out-of-band stream equals in-band fork"
        );
        assert_eq!(a.fork().uniform_f64().to_bits(), b.fork().uniform_f64().to_bits());
    }
}
