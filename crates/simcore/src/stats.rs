//! Statistical estimators used by the measurement analysis (paper §3).
//!
//! * [`Cdf`] — empirical cumulative distribution with percentile queries; the
//!   paper reports almost every result as a CDF or as 5th/median/95th
//!   percentiles.
//! * [`OnlineStats`] — Welford mean/variance accumulator.
//! * [`pearson`] — the correlation the paper computes between provider-server
//!   distance and consistency ratio (r = 0.11, Fig. 8).
//! * [`rmse`] — the trace-vs-theory deviation used to validate the inferred
//!   TTL (Fig. 6(b): 0.0462 @ 60 s vs 0.0955 @ 80 s).

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over `f64` samples.
///
/// # Examples
///
/// ```
/// use cdnc_simcore::stats::Cdf;
///
/// let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at_most(2.0), 0.5);
/// assert_eq!(cdf.percentile(50.0), Some(2.5));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from any collection of samples. Non-finite samples are
    /// rejected.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN or infinite.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(sorted.iter().all(|x| x.is_finite()), "non-finite sample");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Fraction of samples `<= x`, in `[0, 1]`. Returns 0 for an empty CDF.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `p`-th percentile with linear interpolation. `p` is clamped into
    /// `[0, 100]` (a NaN `p` clamps to 0); an empty CDF yields `None`.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
        let n = self.sorted.len();
        if n == 1 {
            return Some(self.sorted[0]);
        }
        let rank = p / 100.0 * (n - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac)
    }

    /// The median (50th percentile), or `None` for an empty CDF.
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Arithmetic mean of the samples.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty.
    pub fn mean(&self) -> f64 {
        assert!(!self.sorted.is_empty(), "mean of empty CDF");
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Evaluates the CDF at evenly spaced points across `[lo, hi]`; handy for
    /// printing figure series.
    pub fn series(&self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2 && lo < hi, "bad series spec");
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.fraction_at_most(x))
            })
            .collect()
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Cdf::from_samples(iter)
    }
}

/// Welford online mean/variance accumulator.
///
/// # Examples
///
/// ```
/// use cdnc_simcore::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 6.0] { s.push(x); }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples seen; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// The raw accumulator words `(count, mean, m2, min, max)` — exactly
    /// what [`OnlineStats::from_raw`] needs to rebuild this accumulator
    /// bit-for-bit. For checkpointing; the analysis accessors above are the
    /// API for reading results.
    pub fn raw(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from [`OnlineStats::raw`] words. Subsequent
    /// pushes continue the saved Welford recurrence exactly.
    pub fn from_raw(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        OnlineStats { count, mean, m2, min, max }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Pearson correlation coefficient of two equal-length series.
///
/// Returns 0 when either series has zero variance (a flat series carries no
/// correlation signal), matching the convention used for paper Fig. 8.
///
/// # Panics
///
/// Panics if the series lengths differ or are empty.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(!xs.is_empty(), "empty series");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Root-mean-square error between two equal-length series.
///
/// # Panics
///
/// Panics if the series lengths differ or are empty.
pub fn rmse(actual: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(actual.len(), predicted.len(), "length mismatch");
    assert!(!actual.is_empty(), "empty series");
    let sum: f64 = actual.iter().zip(predicted).map(|(a, p)| (a - p).powi(2)).sum();
    (sum / actual.len() as f64).sqrt()
}

/// Ordinary least-squares line fit; returns `(slope, intercept)`.
///
/// # Panics
///
/// Panics if the series lengths differ, are shorter than 2, or `xs` has zero
/// variance.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
    }
    assert!(vx > 0.0, "x has zero variance");
    let slope = cov / vx;
    (slope, my - slope * mx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cdf_fractions() {
        let cdf = Cdf::from_samples([10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(cdf.fraction_at_most(5.0), 0.0);
        assert_eq!(cdf.fraction_at_most(10.0), 0.2);
        assert_eq!(cdf.fraction_at_most(35.0), 0.6);
        assert_eq!(cdf.fraction_at_most(100.0), 1.0);
    }

    #[test]
    fn cdf_percentiles_interpolate() {
        let cdf = Cdf::from_samples([0.0, 10.0]);
        assert_eq!(cdf.percentile(0.0), Some(0.0));
        assert_eq!(cdf.percentile(50.0), Some(5.0));
        assert_eq!(cdf.percentile(100.0), Some(10.0));
        assert_eq!(cdf.median(), Some(5.0));
        // Out-of-range ranks clamp; an empty CDF yields None.
        assert_eq!(cdf.percentile(-5.0), Some(0.0));
        assert_eq!(cdf.percentile(250.0), Some(10.0));
        assert_eq!(Cdf::from_samples([]).percentile(50.0), None);
    }

    #[test]
    fn cdf_single_sample() {
        let cdf = Cdf::from_samples([7.0]);
        assert_eq!(cdf.percentile(0.0), Some(7.0));
        assert_eq!(cdf.percentile(95.0), Some(7.0));
        assert_eq!(cdf.mean(), 7.0);
        assert_eq!(cdf.min(), Some(7.0));
        assert_eq!(cdf.max(), Some(7.0));
    }

    #[test]
    fn cdf_series_endpoints() {
        let cdf = Cdf::from_samples([1.0, 2.0, 3.0]);
        let s = cdf.series(0.0, 3.0, 4);
        assert_eq!(s[0], (0.0, 0.0));
        assert_eq!(s[3], (3.0, 1.0));
    }

    #[test]
    fn empty_cdf_is_safe_for_fraction() {
        let cdf = Cdf::default();
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_most(1.0), 0.0);
    }

    #[test]
    fn online_stats_matches_direct_computation() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut s = OnlineStats::new();
        s.extend(xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        all.extend(xs.iter().copied());
        let mut left = OnlineStats::new();
        left.extend(xs[..37].iter().copied());
        let mut right = OnlineStats::new();
        right.extend(xs[37..].iter().copied());
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn pearson_perfect_and_flat() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        let flat = [5.0; 4];
        assert_eq!(pearson(&xs, &flat), 0.0);
    }

    #[test]
    fn rmse_zero_for_identical() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&xs, &xs), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let (m, b) = linear_fit(&xs, &ys);
        assert!((m - 3.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn cdf_rejects_nan() {
        let _ = Cdf::from_samples([1.0, f64::NAN]);
    }

    proptest! {
        /// fraction_at_most is monotone non-decreasing in x.
        #[test]
        fn prop_cdf_monotone(mut xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
                             a in -1e6f64..1e6, b in -1e6f64..1e6) {
            xs.iter_mut().for_each(|x| *x = x.abs());
            let cdf = Cdf::from_samples(xs);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(cdf.fraction_at_most(lo) <= cdf.fraction_at_most(hi));
        }

        /// Percentile is bounded by min/max and monotone in p.
        #[test]
        fn prop_percentile_bounds(xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
                                  p in 0.0f64..100.0, q in 0.0f64..100.0) {
            let cdf = Cdf::from_samples(xs);
            let (lo, hi) = if p <= q { (p, q) } else { (q, p) };
            prop_assert!(cdf.percentile(lo).unwrap() <= cdf.percentile(hi).unwrap() + 1e-9);
            prop_assert!(cdf.percentile(0.0).unwrap() >= cdf.min().unwrap() - 1e-9);
            prop_assert!(cdf.percentile(100.0).unwrap() <= cdf.max().unwrap() + 1e-9);
        }

        /// Pearson correlation is always within [-1, 1].
        #[test]
        fn prop_pearson_bounded(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..64)) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let r = pearson(&xs, &ys);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }
}
