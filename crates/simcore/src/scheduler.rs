//! An event queue fused with a simulation clock.
//!
//! [`Scheduler`] is the main driver used by every simulator in the workspace:
//! the crawl simulator that synthesises the measurement trace and the CDN
//! evaluation simulator that replays it under alternative update methods.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use cdnc_obs::profile::{self, Subsystem};
use cdnc_obs::{
    Counter, Digest, Gauge, HandlerTimer, Health, Histogram, MemProbe, Registry, Sampler, Tracer,
};

/// Drives a simulation: owns the clock and the pending-event queue.
///
/// Handlers pull events with [`Scheduler::next`], which advances the clock to
/// the event's timestamp. Scheduling into the past is a logic error and
/// panics, which catches causality bugs at their source.
///
/// # Examples
///
/// ```
/// use cdnc_simcore::{Scheduler, SimDuration};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Tick(u32) }
///
/// let mut sched = Scheduler::new();
/// sched.schedule_in(SimDuration::from_secs(1), Ev::Tick(1));
/// let mut ticks = 0;
/// while let Some((now, Ev::Tick(n))) = sched.next() {
///     ticks = n;
///     if n < 3 {
///         sched.schedule_at(now + SimDuration::from_secs(1), Ev::Tick(n + 1));
///     }
/// }
/// assert_eq!(ticks, 3);
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    now: SimTime,
    horizon: Option<SimTime>,
    processed: u64,
    /// Observation-only instrumentation: never read back into scheduling.
    obs_processed: Counter,
    obs_depth: Gauge,
    obs_tracer: Tracer,
    obs_sampler: Sampler,
    /// Queue occupancy observed by each pop (profiling probe; inert
    /// unless the registry armed profiling).
    obs_pop_depth: Histogram,
    /// Allocation-spike probe ticked with the clock (same gate).
    obs_mem_probe: MemProbe,
    /// Wall-clock cost of the pop + clock-advance step itself — the
    /// scheduler's share of the dispatch path (timeprof gate; inert
    /// unless the registry armed time profiling).
    obs_pop_timer: HandlerTimer,
    /// Determinism audit trail: every pop folds its sim-time and the
    /// post-pop queue depth (digest gate; inert unless armed).
    obs_digest: Digest,
    /// Run-health progress counter ticked with the clock (health gate).
    obs_health: Health,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon: None,
            processed: 0,
            obs_processed: Counter::default(),
            obs_depth: Gauge::default(),
            obs_tracer: Tracer::default(),
            obs_sampler: Sampler::default(),
            obs_pop_depth: Histogram::default(),
            obs_mem_probe: MemProbe::default(),
            obs_pop_timer: HandlerTimer::default(),
            obs_digest: Digest::disabled(),
            obs_health: Health::disabled(),
        }
    }

    /// Attaches metrics: `sched_events_processed` (counter) and
    /// `sched_queue_depth` (gauge whose high-water mark is the largest
    /// pending-event backlog seen). With a disabled registry the handles
    /// are inert — the hot-path cost is one branch per operation.
    /// The causal tracer (if enabled on the registry) also rides along:
    /// [`Scheduler::next`] advances its recorded horizon with the clock.
    /// If series sampling is enabled, `sched_queue_depth` (gauge) and
    /// `sched_events_processed` (rate = events/sec) become sampled series
    /// and the sampler is ticked with the clock; attaching marks a fresh
    /// sampling segment because this scheduler's clock starts at zero.
    /// If profiling is armed, `sched_queue_depth_at_pop` (log-histogram of
    /// queue occupancy at each pop) and the allocation-spike probe ride
    /// along too. If time profiling is armed, each pop's own wall-clock
    /// cost folds into the `sched_pop` dispatch timer — the scheduler's
    /// share of handing events to handlers.
    pub fn set_obs(&mut self, registry: &Registry) {
        self.obs_processed = registry.counter("sched_events_processed");
        self.obs_depth = registry.gauge("sched_queue_depth");
        self.obs_depth.set(self.queue.len() as u64);
        self.obs_tracer = registry.tracer();
        self.obs_sampler = registry.sampler();
        self.obs_sampler.begin_segment();
        registry.series_gauge("sched_queue_depth");
        registry.series_rate("sched_events_processed");
        self.obs_pop_depth = if registry.profiling_enabled() {
            registry.histogram("sched_queue_depth_at_pop")
        } else {
            Histogram::default()
        };
        self.obs_mem_probe = registry.mem_probe();
        self.obs_pop_timer = registry.handler_timer("sched_pop");
        self.obs_digest = registry.digest();
        self.obs_health = registry.health();
        if let Some(h) = self.horizon {
            self.obs_health.set_horizon(h.as_micros());
        }
    }

    /// Creates a scheduler that silently stops yielding events past `horizon`
    /// (events scheduled later stay in the queue but [`Scheduler::next`]
    /// returns `None`).
    pub fn with_horizon(horizon: SimTime) -> Self {
        Scheduler { horizon: Some(horizon), ..Self::new() }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events handed out so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The configured horizon, if any.
    pub fn horizon(&self) -> Option<SimTime> {
        self.horizon
    }

    /// The timestamp of the earliest pending event, if any (horizon-blind:
    /// reports events beyond the horizon too, so callers can decide whether
    /// the next [`Scheduler::next`] would deliver).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Checkpoint view of the dynamic scheduler state: the clock, the
    /// processed-event count, and every pending entry in pop order (see
    /// [`EventQueue::entries`]). Instrumentation handles are not part of the
    /// snapshot — they are rewired by [`Scheduler::set_obs`] on restore.
    pub fn state(&self) -> (SimTime, u64, Vec<(SimTime, u64, &E)>, u64) {
        let (entries, next_seq) = self.queue.entries();
        (self.now, self.processed, entries, next_seq)
    }

    /// Overwrites the dynamic state with a snapshot captured by
    /// [`Scheduler::state`]: clock, processed count, and the exact pending
    /// queue including sequence numbers, so restored runs pop — and digest —
    /// identically to the uninterrupted run.
    pub fn restore_state(
        &mut self,
        now: SimTime,
        processed: u64,
        entries: Vec<(SimTime, u64, E)>,
        next_seq: u64,
    ) {
        self.queue = EventQueue::from_entries(entries, next_seq);
        self.now = now;
        self.processed = processed;
        self.obs_depth.set(self.queue.len() as u64);
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock — causality violation.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "scheduled into the past: {} < {}", at, self.now);
        let _prof = profile::scope(Subsystem::Scheduler);
        self.queue.push(at, event);
        self.obs_depth.set(self.queue.len() as u64);
    }

    /// Schedules `event` after the relative delay `delay`.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        let _prof = profile::scope(Subsystem::Scheduler);
        self.queue.push(self.now + delay, event);
        self.obs_depth.set(self.queue.len() as u64);
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    ///
    /// Returns `None` when the queue is empty or the next event lies beyond
    /// the horizon.
    ///
    /// Not an `Iterator`: iterating would hold `&mut self`, and handlers
    /// need the scheduler back to enqueue follow-up events.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        if let (Some(h), Some(t)) = (self.horizon, self.queue.peek_time()) {
            if t > h {
                return None;
            }
        }
        // Occupancy the pop observes (only when it will succeed: one
        // histogram sample per delivered event).
        if !self.queue.is_empty() {
            self.obs_pop_depth.record(self.queue.len() as f64);
        }
        let _dispatch = self.obs_pop_timer.start();
        let (t, e) = {
            let _prof = profile::scope(Subsystem::Scheduler);
            self.queue.pop()?
        };
        debug_assert!(t >= self.now, "event queue yielded a past event");
        self.now = t;
        self.processed += 1;
        self.obs_processed.inc();
        self.obs_depth.set(self.queue.len() as u64);
        self.obs_tracer.tick(t.as_micros());
        self.obs_sampler.tick(t.as_micros());
        self.obs_mem_probe.tick(t.as_micros());
        // Structural identity only: sim-time and post-pop backlog, both
        // deterministic — never wall-clock readings.
        self.obs_digest.fold("sched_pop", 0, t.as_micros(), &[self.queue.len() as u64]);
        self.obs_health.tick(t.as_micros());
        Some((t, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        A,
        B,
    }

    #[test]
    fn clock_advances_with_events() {
        let mut s = Scheduler::new();
        s.schedule_in(SimDuration::from_secs(3), Ev::A);
        s.schedule_in(SimDuration::from_secs(1), Ev::B);
        assert_eq!(s.now(), SimTime::ZERO);
        let (t1, e1) = s.next().unwrap();
        assert_eq!((t1, e1), (SimTime::from_secs(1), Ev::B));
        assert_eq!(s.now(), SimTime::from_secs(1));
        let (t2, e2) = s.next().unwrap();
        assert_eq!((t2, e2), (SimTime::from_secs(3), Ev::A));
        assert!(s.next().is_none());
        assert_eq!(s.processed(), 2);
    }

    #[test]
    fn horizon_stops_delivery() {
        let mut s = Scheduler::with_horizon(SimTime::from_secs(10));
        s.schedule_in(SimDuration::from_secs(5), Ev::A);
        s.schedule_in(SimDuration::from_secs(15), Ev::B);
        assert!(s.next().is_some());
        assert!(s.next().is_none(), "event beyond horizon must not be delivered");
        assert_eq!(s.pending(), 1, "the late event stays queued");
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut s = Scheduler::with_horizon(SimTime::from_secs(10));
        s.schedule_at(SimTime::from_secs(10), Ev::A);
        assert!(s.next().is_some());
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn past_scheduling_panics() {
        let mut s = Scheduler::new();
        s.schedule_in(SimDuration::from_secs(5), Ev::A);
        s.next();
        s.schedule_at(SimTime::from_secs(1), Ev::B);
    }

    #[test]
    fn metrics_track_processing_and_backlog() {
        let reg = cdnc_obs::Registry::enabled();
        let mut s = Scheduler::new();
        s.set_obs(&reg);
        s.schedule_in(SimDuration::from_secs(1), Ev::A);
        s.schedule_in(SimDuration::from_secs(2), Ev::B);
        while s.next().is_some() {}
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sched_events_processed"), 2);
        let depth = snap.gauges.iter().find(|(n, _)| n == "sched_queue_depth").unwrap().1;
        assert_eq!(depth.high_water, 2);
        assert_eq!(depth.value, 0);
    }

    #[test]
    fn tracer_horizon_follows_clock() {
        let reg = cdnc_obs::Registry::enabled();
        reg.enable_tracing();
        let mut s = Scheduler::new();
        s.set_obs(&reg);
        s.schedule_in(SimDuration::from_secs(5), Ev::A);
        while s.next().is_some() {}
        assert_eq!(reg.tracer().store().horizon_us, 5_000_000);
    }

    #[test]
    fn sampler_records_queue_depth_and_event_rate_series() {
        let reg = cdnc_obs::Registry::enabled();
        reg.enable_series(1_000_000); // sample every simulated second
        let mut s = Scheduler::new();
        s.set_obs(&reg);
        for i in 1..=5 {
            s.schedule_in(SimDuration::from_secs(i), Ev::A);
        }
        while s.next().is_some() {}
        let snap = reg.series_snapshot();
        let depth = snap.get("sched_queue_depth", cdnc_obs::SeriesKind::Gauge).unwrap();
        assert_eq!(depth.points.len(), 5, "one sample per 1 s event");
        assert_eq!(depth.points[0], cdnc_obs::SeriesPoint { t_us: 1_000_000, value: 4.0 });
        assert_eq!(depth.points[4].value, 0.0, "queue drains by the last sample");
        let rate = snap.get("sched_events_processed", cdnc_obs::SeriesKind::Rate).unwrap();
        assert!(rate.points.iter().skip(1).all(|p| p.value == 1.0), "1 event/s steady state");
    }

    #[test]
    fn disabled_obs_changes_nothing() {
        let mut a = Scheduler::new();
        let mut b = Scheduler::new();
        b.set_obs(&cdnc_obs::Registry::disabled());
        for s in [&mut a, &mut b] {
            s.schedule_in(SimDuration::from_secs(1), Ev::A);
        }
        assert_eq!(a.next().unwrap(), b.next().unwrap());
    }

    #[test]
    fn pop_depth_histogram_matches_ground_truth() {
        let reg = cdnc_obs::Registry::enabled();
        reg.enable_profiling(cdnc_obs::ProfileConfig::default());
        let mut s = Scheduler::new();
        s.set_obs(&reg);
        // Interleave schedules and pops, tracking the depth each pop sees.
        let mut expected: Vec<u64> = Vec::new();
        for i in 1..=4u64 {
            s.schedule_in(SimDuration::from_secs(i), Ev::A);
        }
        expected.push(4);
        s.next().unwrap();
        s.schedule_in(SimDuration::from_secs(10), Ev::B);
        while s.pending() > 0 {
            expected.push(s.pending() as u64);
            s.next().unwrap();
        }
        assert!(s.next().is_none(), "an empty queue must not record a sample");
        let snap = reg.snapshot();
        let h = snap.histogram("sched_queue_depth_at_pop").expect("armed probe records");
        assert_eq!(h.count, expected.len() as u64);
        assert_eq!(h.sum, expected.iter().sum::<u64>() as f64);
        assert_eq!(h.min, *expected.iter().min().unwrap() as f64);
        assert_eq!(h.max, *expected.iter().max().unwrap() as f64);
    }

    #[test]
    fn pop_depth_histogram_requires_profiling_arming() {
        let reg = cdnc_obs::Registry::enabled();
        let mut s = Scheduler::new();
        s.set_obs(&reg);
        s.schedule_in(SimDuration::from_secs(1), Ev::A);
        while s.next().is_some() {}
        assert!(
            reg.snapshot().histogram("sched_queue_depth_at_pop").is_none(),
            "the probe is opt-in"
        );
    }

    #[test]
    fn relative_scheduling_is_from_current_clock() {
        let mut s = Scheduler::new();
        s.schedule_in(SimDuration::from_secs(2), Ev::A);
        let (now, _) = s.next().unwrap();
        s.schedule_in(SimDuration::from_secs(2), Ev::B);
        let (t, _) = s.next().unwrap();
        assert_eq!(t, now + SimDuration::from_secs(2));
    }

    #[test]
    fn restored_state_pops_identically() {
        let mut straight = Scheduler::with_horizon(SimTime::from_secs(60));
        let t = SimTime::from_secs(5);
        for ev in ["a", "b", "c"] {
            straight.schedule_at(t, ev);
        }
        straight.schedule_at(SimTime::from_secs(1), "early");
        straight.next().unwrap();
        // Capture mid-run, then drain both the original and the restored copy.
        let (now, processed, entries, next_seq) = straight.state();
        assert_eq!((now, processed), (SimTime::from_secs(1), 1));
        let owned: Vec<_> = entries.iter().map(|&(t, s, e)| (t, s, *e)).collect();
        let mut resumed = Scheduler::with_horizon(SimTime::from_secs(60));
        resumed.restore_state(now, processed, owned, next_seq);
        assert_eq!(resumed.now(), now);
        assert_eq!(resumed.peek_time(), Some(t));
        loop {
            match (straight.next(), resumed.next()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b, "restored run diverged"),
            }
        }
        assert_eq!(straight.processed(), resumed.processed());
    }

    #[test]
    fn digest_folds_each_pop_and_health_tracks_progress() {
        let run = || {
            let reg = cdnc_obs::Registry::enabled();
            reg.enable_digest(cdnc_obs::DigestConfig::default());
            reg.enable_health();
            let mut s = Scheduler::with_horizon(SimTime::from_secs(60));
            s.set_obs(&reg);
            s.schedule_in(SimDuration::from_secs(1), Ev::A);
            s.schedule_in(SimDuration::from_secs(2), Ev::B);
            while s.next().is_some() {}
            reg
        };
        let (a, b) = (run(), run());
        let (da, db) = (a.digest_snapshot().unwrap(), b.digest_snapshot().unwrap());
        assert_eq!(da.events, 2, "one fold per delivered event");
        assert_eq!(da.chain, db.chain, "identical runs chain identically");
        let h = a.health_snapshot().unwrap();
        assert_eq!(h.events, 2);
        assert_eq!(h.sim_time_us, SimTime::from_secs(2).as_micros());
        assert_eq!(h.horizon_us, SimTime::from_secs(60).as_micros());
    }
}
