//! A versioned, sequential checkpoint codec.
//!
//! Checkpoint artifacts are plain text: one `key=value` line per field,
//! written and read back in the same fixed order. The reader is strict — it
//! verifies every key as it goes, so a truncated, reordered, or
//! wrong-version artifact fails loudly at the first mismatch instead of
//! silently restoring garbage state.
//!
//! Values never lose precision: `f64` fields are stored as the hexadecimal
//! IEEE-754 bit pattern (`f<16 hex digits>`), not as a decimal rendering, so
//! a restored simulation is *bit-identical* to the one that was saved.
//! Strings must be newline-free (simulation state only carries identifiers
//! and labels, never free text).
//!
//! # Examples
//!
//! ```
//! use cdnc_simcore::ckpt::{CkptReader, CkptWriter};
//!
//! let mut w = CkptWriter::new("demo");
//! w.u64("count", 3);
//! w.f64("rate", 0.25);
//! let artifact = w.finish();
//!
//! let mut r = CkptReader::new(&artifact, "demo").unwrap();
//! assert_eq!(r.u64("count").unwrap(), 3);
//! assert_eq!(r.f64("rate").unwrap(), 0.25);
//! r.done().unwrap();
//! ```

use crate::rng::SimRng;
use crate::time::SimTime;

/// Artifact format version; bumped on any incompatible layout change.
pub const CKPT_VERSION: u32 = 1;

/// A checkpoint decode failure: what was expected, what was found, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptError(pub String);

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint decode error: {}", self.0)
    }
}

impl std::error::Error for CkptError {}

/// Sequential writer for one checkpoint artifact.
#[derive(Debug)]
pub struct CkptWriter {
    out: String,
}

impl CkptWriter {
    /// Starts an artifact: writes the version header and the artifact
    /// `kind` tag (e.g. `"cdn-sim"`), which the reader verifies.
    pub fn new(kind: &str) -> Self {
        let mut w = CkptWriter { out: String::new() };
        w.u64("ckpt_version", CKPT_VERSION as u64);
        w.str("ckpt_kind", kind);
        w
    }

    fn line(&mut self, key: &str, value: &str) {
        debug_assert!(!key.contains(['=', '\n']), "bad checkpoint key {key:?}");
        self.out.push_str(key);
        self.out.push('=');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// Writes an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) {
        self.line(key, &value.to_string());
    }

    /// Writes a `usize` field (stored as `u64`).
    pub fn usize(&mut self, key: &str, value: usize) {
        self.u64(key, value as u64);
    }

    /// Writes a boolean field (`0` / `1`).
    pub fn bool(&mut self, key: &str, value: bool) {
        self.u64(key, value as u64);
    }

    /// Writes a float field as its exact IEEE-754 bit pattern.
    pub fn f64(&mut self, key: &str, value: f64) {
        self.line(key, &format!("f{:016x}", value.to_bits()));
    }

    /// Writes a simulated instant (stored in integer microseconds).
    pub fn time(&mut self, key: &str, value: SimTime) {
        self.u64(key, value.as_micros());
    }

    /// Writes a newline-free string field.
    ///
    /// # Panics
    ///
    /// Panics if `value` contains a newline — checkpoint state only carries
    /// identifiers and labels, never free text.
    pub fn str(&mut self, key: &str, value: &str) {
        assert!(!value.contains('\n'), "checkpoint string value contains a newline");
        self.line(key, value);
    }

    /// Writes a [`SimRng`] mid-stream snapshot as six fields under `key`
    /// (`<key>_seed`, `<key>_forks`, `<key>_s0..s3`).
    pub fn rng(&mut self, key: &str, rng: &SimRng) {
        let (seed, forks, state) = rng.snapshot();
        self.u64(&format!("{key}_seed"), seed);
        self.u64(&format!("{key}_forks"), forks);
        for (i, word) in state.iter().enumerate() {
            self.u64(&format!("{key}_s{i}"), *word);
        }
    }

    /// Finishes the artifact and returns its text.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Strict sequential reader over a checkpoint artifact.
#[derive(Debug)]
pub struct CkptReader<'a> {
    lines: std::str::Lines<'a>,
    line_no: usize,
}

impl<'a> CkptReader<'a> {
    /// Opens an artifact, verifying the version header and `kind` tag.
    pub fn new(text: &'a str, kind: &str) -> Result<Self, CkptError> {
        let mut r = CkptReader { lines: text.lines(), line_no: 0 };
        let version = r.u64("ckpt_version")?;
        if version != CKPT_VERSION as u64 {
            return Err(CkptError(format!(
                "unsupported checkpoint version {version} (this build reads {CKPT_VERSION})"
            )));
        }
        let found = r.str("ckpt_kind")?;
        if found != kind {
            return Err(CkptError(format!("artifact kind {found:?}, expected {kind:?}")));
        }
        Ok(r)
    }

    fn value(&mut self, key: &str) -> Result<&'a str, CkptError> {
        self.line_no += 1;
        let line = self
            .lines
            .next()
            .ok_or_else(|| CkptError(format!("unexpected end of artifact, wanted key {key:?}")))?;
        let (found, value) = line
            .split_once('=')
            .ok_or_else(|| CkptError(format!("line {}: malformed line {line:?}", self.line_no)))?;
        if found != key {
            return Err(CkptError(format!(
                "line {}: found key {found:?}, expected {key:?}",
                self.line_no
            )));
        }
        Ok(value)
    }

    /// Reads the next field as an unsigned integer, verifying its key.
    pub fn u64(&mut self, key: &str) -> Result<u64, CkptError> {
        let value = self.value(key)?;
        value.parse().map_err(|_| CkptError(format!("line {}: bad u64 {value:?}", self.line_no)))
    }

    /// Reads the next field as a `usize`, verifying its key.
    pub fn usize(&mut self, key: &str) -> Result<usize, CkptError> {
        Ok(self.u64(key)? as usize)
    }

    /// Reads the next field as a boolean, verifying its key.
    pub fn bool(&mut self, key: &str) -> Result<bool, CkptError> {
        match self.u64(key)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CkptError(format!("line {}: bad bool {other}", self.line_no))),
        }
    }

    /// Reads the next field as an exact-bit float, verifying its key.
    pub fn f64(&mut self, key: &str) -> Result<f64, CkptError> {
        let value = self.value(key)?;
        let bits = value
            .strip_prefix('f')
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .ok_or_else(|| CkptError(format!("line {}: bad f64 bits {value:?}", self.line_no)))?;
        Ok(f64::from_bits(bits))
    }

    /// Reads the next field as a simulated instant, verifying its key.
    pub fn time(&mut self, key: &str) -> Result<SimTime, CkptError> {
        Ok(SimTime::from_micros(self.u64(key)?))
    }

    /// Reads the next field as a string, verifying its key.
    pub fn str(&mut self, key: &str) -> Result<&'a str, CkptError> {
        self.value(key)
    }

    /// Reads a [`SimRng`] snapshot written by [`CkptWriter::rng`]; the
    /// rebuilt generator continues the saved draw and fork sequences
    /// exactly.
    pub fn rng(&mut self, key: &str) -> Result<SimRng, CkptError> {
        let seed = self.u64(&format!("{key}_seed"))?;
        let forks = self.u64(&format!("{key}_forks"))?;
        let mut state = [0u64; 4];
        for (i, word) in state.iter_mut().enumerate() {
            *word = self.u64(&format!("{key}_s{i}"))?;
        }
        Ok(SimRng::from_snapshot(seed, forks, state))
    }

    /// Verifies the artifact is fully consumed — trailing state would mean
    /// the reader and writer disagree about the layout.
    pub fn done(&mut self) -> Result<(), CkptError> {
        match self.lines.next() {
            None => Ok(()),
            Some(line) => Err(CkptError(format!("trailing artifact line {line:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trips_every_field_type() {
        let mut w = CkptWriter::new("test");
        w.u64("a", u64::MAX);
        w.usize("b", 42);
        w.bool("c", true);
        w.f64("d", -0.1);
        w.time("e", SimTime::from_secs(7));
        w.str("f", "hybrid/8");
        let text = w.finish();
        let mut r = CkptReader::new(&text, "test").unwrap();
        assert_eq!(r.u64("a").unwrap(), u64::MAX);
        assert_eq!(r.usize("b").unwrap(), 42);
        assert!(r.bool("c").unwrap());
        assert_eq!(r.f64("d").unwrap(), -0.1);
        assert_eq!(r.time("e").unwrap(), SimTime::from_secs(7));
        assert_eq!(r.str("f").unwrap(), "hybrid/8");
        r.done().unwrap();
    }

    #[test]
    fn key_mismatch_is_an_error() {
        let mut w = CkptWriter::new("test");
        w.u64("expected", 1);
        let text = w.finish();
        let mut r = CkptReader::new(&text, "test").unwrap();
        let err = r.u64("other").unwrap_err();
        assert!(err.0.contains("expected"), "error names the wanted key: {err}");
    }

    #[test]
    fn wrong_kind_and_version_are_rejected() {
        let text = CkptWriter::new("alpha").finish();
        assert!(CkptReader::new(&text, "beta").is_err());
        let bad_version = text.replacen(&format!("={CKPT_VERSION}"), "=999", 1);
        assert!(CkptReader::new(&bad_version, "alpha").is_err());
    }

    #[test]
    fn truncation_and_trailing_state_are_errors() {
        let mut w = CkptWriter::new("test");
        w.u64("a", 1);
        w.u64("b", 2);
        let text = w.finish();
        let mut r = CkptReader::new(&text, "test").unwrap();
        r.u64("a").unwrap();
        assert!(r.done().is_err(), "unread field must be reported");
        let truncated: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
        let mut r = CkptReader::new(&truncated, "test").unwrap();
        r.u64("a").unwrap();
        assert!(r.u64("b").is_err(), "missing field must be reported");
    }

    #[test]
    fn rng_snapshot_round_trip_resumes_the_stream() {
        let mut rng = SimRng::seed_from_u64(17);
        for _ in 0..23 {
            rng.uniform_f64();
        }
        rng.fork();
        let mut w = CkptWriter::new("test");
        w.rng("r", &rng);
        let text = w.finish();
        let mut r = CkptReader::new(&text, "test").unwrap();
        let mut restored = r.rng("r").unwrap();
        r.done().unwrap();
        for _ in 0..32 {
            assert_eq!(rng.uniform_f64().to_bits(), restored.uniform_f64().to_bits());
        }
        assert_eq!(rng.fork().uniform_f64().to_bits(), restored.fork().uniform_f64().to_bits());
    }

    proptest! {
        /// Floats survive the bit-pattern encoding exactly, including
        /// negative zero and subnormals.
        #[test]
        fn prop_f64_bits_round_trip(bits in 0u64..=u64::MAX) {
            let value = f64::from_bits(bits);
            let mut w = CkptWriter::new("test");
            w.f64("x", value);
            let text = w.finish();
            let mut r = CkptReader::new(&text, "test").unwrap();
            prop_assert_eq!(r.f64("x").unwrap().to_bits(), bits);
        }
    }
}
