//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API: a
//! panicked holder releases the lock instead of poisoning it. Performance is
//! whatever `std::sync` provides, which is plenty for the observability
//! registry's cold paths (hot paths use atomics, not locks).

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that does not poison.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_released_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
