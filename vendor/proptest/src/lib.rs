//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace uses: the [`Strategy`]
//! trait with range / tuple / vec / `Just` / union / map strategies, the
//! [`proptest!`] test macro with optional `#![proptest_config(..)]`, and the
//! `prop_assert!` family. Cases are generated from a deterministic per-case
//! seed, so failures are reproducible; there is no shrinking — the failing
//! case's number and message are reported as-is.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{Strategy, VecStrategy};

    /// Inclusive-exclusive size specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub(crate) lo: usize,
        pub(crate) hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing a `Vec` whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! The glob-importable API.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ..) { body }`
/// expands to a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(__case as u64, stringify!($name));
                $(let $pat = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)+
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!("proptest case {}/{} failed: {}", __case + 1, __config.cases, e);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1_000).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_are_bounded(x in 3u64..17, y in -2.0f64..2.0, n in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((0u32..5, 0.0f64..1.0), 2..20)) {
            prop_assert!((2..20).contains(&v.len()));
            for (a, b) in v {
                prop_assert!(a < 5);
                prop_assert!((0.0..1.0).contains(&b));
            }
        }

        #[test]
        fn map_and_oneof(e in arb_even(), pick in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(pick == 1 || pick == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3 })]
        #[test]
        fn config_limits_cases(_x in 0u64..10) {
            // Only checks that the configured form compiles and runs.
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_panics_with_case_number() {
        proptest! {
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(5, "t");
        let mut b = crate::test_runner::TestRng::for_case(5, "t");
        let s = 0u64..1_000_000;
        assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&(0u64..1_000_000), &mut b));
    }
}
