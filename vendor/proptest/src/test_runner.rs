//! Test-run configuration, errors, and the deterministic case RNG.

use std::fmt;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed case, carrying the `prop_assert!` message.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case random source (xoshiro256++ seeded from the case
/// number and the test's name, so distinct tests see distinct streams).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// The RNG for case `case` of the test named `name`.
    pub fn for_case(case: u64, name: &str) -> Self {
        // FNV-1a over the test name mixes it into the seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        TestRng { s }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}
