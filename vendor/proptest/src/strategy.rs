//! Value-generation strategies.

use crate::collection::SizeRange;
use crate::test_runner::TestRng;

/// Generates values of `Self::Value` from a [`TestRng`].
///
/// Object-safe: the generic combinators carry `where Self: Sized`, so
/// `Box<dyn Strategy<Value = T>>` works (used by [`Union`]).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Boxes a strategy for use in heterogeneous unions ([`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`StrategyExt::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len());
        self.arms[idx].sample(rng)
    }
}

/// The result of [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below(self.size.hi - self.size.lo);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D));
