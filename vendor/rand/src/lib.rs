//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates.io cache, so
//! this tree vendors the minimal surface the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt::random_range`] / [`RngExt::random_bool`] helpers. The generator
//! is xoshiro256++ seeded via SplitMix64 — a different stream than upstream
//! `rand`'s ChaCha12, but every consumer in this workspace only relies on
//! determinism and statistical quality, never on specific values.

/// A source of 64-bit randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Floating rounding can land exactly on the excluded upper bound.
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

/// Convenience draws on any [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — a fast, high-quality, deterministic 64-bit generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate case; SplitMix64 cannot
            // produce it from four consecutive steps, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for checkpointing a generator
        /// mid-stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`] output. The restored
        /// generator continues the exact stream the snapshot interrupted.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<f64> = (0..16).map(|_| a.random_range(0.0..1.0)).collect();
        let sb: Vec<f64> = (0..16).map(|_| b.random_range(0.0..1.0)).collect();
        let sc: Vec<f64> = (0..16).map(|_| c.random_range(0.0..1.0)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let n: usize = r.random_range(0..7);
            assert!(n < 7);
            let m: u64 = r.random_range(5..=9);
            assert!((5..=9).contains(&m));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| r.random_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
