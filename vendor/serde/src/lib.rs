//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize` / `Deserialize` on its data types to
//! promise serialisability, but ships no format crate and serialises by hand
//! (`cdnc-trace::codec`, `cdnc-obs::json`). With crates.io unreachable, this
//! stub keeps those promises checkable: the traits exist, every type
//! satisfies them via blanket impls, and the derive macros are accepted and
//! expand to nothing.

/// Marker for types that can be serialised.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that can be deserialised.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub mod de {
    //! Deserialisation traits.

    pub use crate::Deserialize;

    /// Marker for types deserialisable without borrowing from the input.
    pub trait DeserializeOwned {}

    impl<T> DeserializeOwned for T {}
}

pub mod ser {
    //! Serialisation traits.

    pub use crate::Serialize;
}

pub use serde_derive::{Deserialize, Serialize};
