//! Offline stand-in for `criterion`.
//!
//! A small wall-clock benchmark harness exposing the group-based criterion
//! API this workspace uses. Each benchmark is warmed up once, then timed over
//! `sample_size` samples; the mean, minimum, and maximum per-iteration times
//! are printed. There are no plots, no statistics beyond min/mean/max, and no
//! baseline comparison — the goal is that `cargo bench` runs offline and
//! reports stable, comparable numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Target measurement budget per benchmark, split across samples.
const MEASURE_BUDGET: Duration = Duration::from_millis(500);

/// The benchmark harness handle passed to every `criterion_group!` function.
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Creates a harness with default settings.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Criterion { _private: () }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: DEFAULT_SAMPLE_SIZE }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IdLabel, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark that borrows `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IdLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group. (No-op: kept for API compatibility.)
    pub fn finish(self) {}
}

/// Anything usable as a benchmark identifier: a string or a [`BenchmarkId`].
pub trait IdLabel {
    /// The identifier rendered for display.
    fn label(&self) -> String;
}

impl IdLabel for &str {
    fn label(&self) -> String {
        (*self).to_string()
    }
}

impl IdLabel for String {
    fn label(&self) -> String {
        self.clone()
    }
}

impl IdLabel for BenchmarkId {
    fn label(&self) -> String {
        self.0.clone()
    }
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id `"{function}/{parameter}"`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark closures; `iter` times the routine.
pub struct Bencher {
    /// Total time spent inside `iter` routines this sample.
    elapsed: Duration,
    /// Iterations executed this sample.
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it enough times to fill this sample's slice
    /// of the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.elapsed || self.iters >= 1_000_000 {
                self.elapsed = elapsed;
                return;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up: one untimed sample.
    let mut warm = Bencher { elapsed: Duration::ZERO, iters: 0 };
    f(&mut warm);

    let per_sample = MEASURE_BUDGET / sample_size as u32;
    let mut per_iter = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { elapsed: per_sample, iters: 0 };
        f(&mut b);
        if b.iters > 0 {
            per_iter.push(b.elapsed.as_secs_f64() / b.iters as f64);
        }
    }
    if per_iter.is_empty() {
        println!("{label:<48} (no iterations)");
        return;
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("{label:<48} time: [{} {} {}]", fmt_time(min), fmt_time(mean), fmt_time(max));
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Collects benchmark functions into a runner invoked by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(unit_group, sample_bench);

    #[test]
    fn harness_runs() {
        unit_group();
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).label(), "7");
    }
}
