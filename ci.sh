#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> traced figure run + Chrome trace round-trip"
TRACE_DIR="$(mktemp -d)"
cargo run -q -p cdnc-experiments --release -- fig24 --scale smoke --trace --trace-dir "$TRACE_DIR"
test -s "$TRACE_DIR/fig24.trace.json"
# `trace summary` re-parses the emitted Chrome trace through obs::json,
# so a successful read is the round-trip check.
cargo run -q -p cdnc-experiments --release -- trace summary "$TRACE_DIR/fig24.trace.json"
cargo run -q -p cdnc-experiments --release -- trace critical-path "$TRACE_DIR/fig24.trace.json"
rm -rf "$TRACE_DIR"

echo "==> paired-run determinism with tracing on"
cargo test -p cdnc-experiments --test obs_determinism --quiet
cargo test -p cdnc-experiments --test trace_ground_truth --quiet

echo "CI gate passed."
