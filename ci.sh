#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "CI gate passed."
