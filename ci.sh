#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> traced figure run + Chrome trace round-trip"
TRACE_DIR="$(mktemp -d)"
cargo run -q -p cdnc-experiments --release -- fig24 --scale smoke --trace --trace-dir "$TRACE_DIR"
test -s "$TRACE_DIR/fig24.trace.json"
# `trace summary` re-parses the emitted Chrome trace through obs::json,
# so a successful read is the round-trip check.
cargo run -q -p cdnc-experiments --release -- trace summary "$TRACE_DIR/fig24.trace.json"
cargo run -q -p cdnc-experiments --release -- trace critical-path "$TRACE_DIR/fig24.trace.json"
rm -rf "$TRACE_DIR"

echo "==> paired-run determinism with tracing on"
cargo test -p cdnc-experiments --test obs_determinism --quiet
cargo test -p cdnc-experiments --test trace_ground_truth --quiet

echo "==> serial vs --jobs 2 determinism diff"
PAR_DIR="$(mktemp -d)"
cargo run -q -p cdnc-experiments --release -- fig17 --scale smoke --obs --obs-dir "$PAR_DIR/serial" --trace --trace-dir "$PAR_DIR/serial" > "$PAR_DIR/serial.txt"
cargo run -q -p cdnc-experiments --release -- fig17 --scale smoke --obs --obs-dir "$PAR_DIR/jobs2" --trace --trace-dir "$PAR_DIR/jobs2" --jobs 2 > "$PAR_DIR/jobs2.txt"
# Stdout must match line-for-line except output paths, wall-clock
# "[fig: …s on N worker thread(s)]" lines, and phase-timing table rows.
par_filter() {
  grep -vF "$PAR_DIR" "$1" | grep -vE 'worker thread\(s\)\]$|^  [A-Za-z0-9_/]+ +[0-9]+ +[0-9.]+s$|^  phase '
}
diff <(par_filter "$PAR_DIR/serial.txt") <(par_filter "$PAR_DIR/jobs2.txt")
# Artifacts must match with wall-clock fields scrubbed.
cargo run -q -p cdnc-experiments --release -- obs-diff "$PAR_DIR/serial" "$PAR_DIR/jobs2"
rm -rf "$PAR_DIR"

echo "==> chaos smoke: convergence, traced round-trip, serial vs --jobs 4 diff"
CHAOS_DIR="$(mktemp -d)"
cargo run -q -p cdnc-experiments --release -- ext_chaos --scale smoke --obs --obs-dir "$CHAOS_DIR/serial" --trace --trace-dir "$CHAOS_DIR/serial" > "$CHAOS_DIR/serial.txt"
cargo run -q -p cdnc-experiments --release -- ext_chaos --scale smoke --obs --obs-dir "$CHAOS_DIR/jobs4" --trace --trace-dir "$CHAOS_DIR/jobs4" --jobs 4 > "$CHAOS_DIR/jobs4.txt"
# Every sweep row — calm through storm — must satisfy the convergence
# invariant (zero present-but-stale replicas at the horizon).
if grep 'violations=' "$CHAOS_DIR/serial.txt" | grep -qv 'violations= 0'; then
  echo "ext_chaos: convergence violations detected"; exit 1
fi
# The chaos trace (fault drops, retransmits, failovers) survives the
# Chrome-trace round-trip.
test -s "$CHAOS_DIR/serial/ext_chaos.trace.json"
cargo run -q -p cdnc-experiments --release -- trace summary "$CHAOS_DIR/serial/ext_chaos.trace.json"
# Fault injection, retransmit timers and failovers are bit-identical
# across worker counts.
chaos_filter() {
  grep -vF "$CHAOS_DIR" "$1" | grep -vE 'worker thread\(s\)\]$|^  [A-Za-z0-9_/]+ +[0-9]+ +[0-9.]+s$|^  phase '
}
diff <(chaos_filter "$CHAOS_DIR/serial.txt") <(chaos_filter "$CHAOS_DIR/jobs4.txt")
cargo run -q -p cdnc-experiments --release -- obs-diff "$CHAOS_DIR/serial" "$CHAOS_DIR/jobs4"
rm -rf "$CHAOS_DIR"

echo "==> churn smoke: convergence, checkpoint/replay identity, serial vs --jobs 4 diff"
CHURN_DIR="$(mktemp -d)"
cargo run -q -p cdnc-experiments --release -- ext_churn --scale smoke --obs --obs-dir "$CHURN_DIR/serial" > "$CHURN_DIR/serial.txt"
cargo run -q -p cdnc-experiments --release -- ext_churn --scale smoke --obs --obs-dir "$CHURN_DIR/jobs4" --jobs 4 > "$CHURN_DIR/jobs4.txt"
# Every lifecycle cell — calm through the supernode-kill storm — must
# satisfy the convergence invariant (zero present-but-stale replicas at
# the horizon) despite leaves, crashes, and cold rejoins.
if grep 'violations=' "$CHURN_DIR/serial.txt" | grep -qv 'violations= 0'; then
  echo "ext_churn: convergence violations detected"; exit 1
fi
# Lifecycle scheduling, waiter handoff and failovers are bit-identical
# across worker counts.
churn_filter() {
  grep -vF "$CHURN_DIR" "$1" | grep -vE 'worker thread\(s\)\]$|^  [A-Za-z0-9_/]+ +[0-9]+ +[0-9.]+s$|^  phase '
}
diff <(churn_filter "$CHURN_DIR/serial.txt") <(churn_filter "$CHURN_DIR/jobs4.txt")
cargo run -q -p cdnc-experiments --release -- obs-diff "$CHURN_DIR/serial" "$CHURN_DIR/jobs4"
# Checkpoint/restore self-test: pause the storm cell just before the
# scheduled supernode-kill incident, replay it across the incident, and
# require a bit-identical digest chain and end state vs an uninterrupted
# run — for the full horizon and for an anomaly window.
cargo run -q -p cdnc-experiments --release -- checkpoint "$CHURN_DIR/storm.ckpt" --scale smoke --flash --at 240
cargo run -q -p cdnc-experiments --release -- replay "$CHURN_DIR/storm.ckpt" > "$CHURN_DIR/replay.txt"
grep -q 'replay_chain_match=true' "$CHURN_DIR/replay.txt"
grep -q 'replay_report_match=true' "$CHURN_DIR/replay.txt"
cargo run -q -p cdnc-experiments --release -- replay "$CHURN_DIR/storm.ckpt" --until 420 > "$CHURN_DIR/replay_window.txt"
grep -q 'replay_chain_match=true' "$CHURN_DIR/replay_window.txt"
grep -q 'replay_report_match=true' "$CHURN_DIR/replay_window.txt"
rm -rf "$CHURN_DIR"

echo "==> request-plane smoke: workload curves, serial vs --jobs 4 diff, report section"
WL_DIR="$(mktemp -d)"
cargo run -q -p cdnc-experiments --release -- ext_workload --scale smoke --obs --obs-dir "$WL_DIR/serial" > "$WL_DIR/serial.txt"
cargo run -q -p cdnc-experiments --release -- ext_workload --scale smoke --obs --obs-dir "$WL_DIR/jobs4" --jobs 4 > "$WL_DIR/jobs4.txt"
# The latency/staleness CDF curves landed next to the artifact.
test -s "$WL_DIR/serial/ext_workload.workload.json"
# Request arrivals, cache hits/misses, delayed-hit coalescing and origin
# fetches are bit-identical across worker counts.
wl_filter() {
  grep -vF "$WL_DIR" "$1" | grep -vE 'worker thread\(s\)\]$|^  [A-Za-z0-9_/]+ +[0-9]+ +[0-9.]+s$|^  phase '
}
diff <(wl_filter "$WL_DIR/serial.txt") <(wl_filter "$WL_DIR/jobs4.txt")
cargo run -q -p cdnc-experiments --release -- obs-diff "$WL_DIR/serial" "$WL_DIR/jobs4"
cargo run -q -p cdnc-experiments --release -- report --obs-dir "$WL_DIR/serial" --out "$WL_DIR/report"
grep -q 'Request plane' "$WL_DIR/report/ext_workload.html"
rm -rf "$WL_DIR"

echo "==> series emission + HTML report"
SERIES_DIR="$(mktemp -d)"
cargo run -q -p cdnc-experiments --release -- fig17 --scale smoke --obs --series --obs-dir "$SERIES_DIR"
test -s "$SERIES_DIR/fig17.series.json"
cargo run -q -p cdnc-experiments --release -- report --obs-dir "$SERIES_DIR" --out "$SERIES_DIR/report"
test -s "$SERIES_DIR/report/index.html"
test -s "$SERIES_DIR/report/fig17.html"
rm -rf "$SERIES_DIR"

echo "==> memory profile smoke: attribution + probes artifact"
PROF_DIR="$(mktemp -d)"
cargo run -q -p cdnc-experiments --release -- profile fig20 --scale smoke --obs-dir "$PROF_DIR" > "$PROF_DIR/profile.txt"
test -s "$PROF_DIR/fig20.profile.json"
# The counting allocator is installed in the release binary: the run must
# attribute the bulk of its bytes to named subsystems, not "other".
grep -q 'attributed to named subsystems' "$PROF_DIR/profile.txt"
cargo run -q -p cdnc-experiments --release -- report --obs-dir "$PROF_DIR" --out "$PROF_DIR/report"
grep -q 'Memory profile' "$PROF_DIR/report/fig20.html"
rm -rf "$PROF_DIR"

echo "==> time profile smoke: flamegraph export + structural serial vs --jobs 4 diff"
TP_DIR="$(mktemp -d)"
cargo run -q -p cdnc-experiments --release -- timeprof fig17 --scale smoke --obs-dir "$TP_DIR/serial"
cargo run -q -p cdnc-experiments --release -- timeprof fig17 --scale smoke --obs-dir "$TP_DIR/jobs4" --jobs 4
test -s "$TP_DIR/serial/fig17.folded"
test -s "$TP_DIR/jobs4/fig17.folded"
# Frame paths, counts and handler counts are deterministic; obs-diff
# scrubs the nanosecond telemetry and compares .folded stacks structurally.
cargo run -q -p cdnc-experiments --release -- obs-diff "$TP_DIR/serial" "$TP_DIR/jobs4"
cargo run -q -p cdnc-experiments --release -- report --obs-dir "$TP_DIR/serial" --out "$TP_DIR/report"
grep -q 'Time profile' "$TP_DIR/report/fig17.html"
grep -q 'Worker utilization' "$TP_DIR/report/fig17.html"
rm -rf "$TP_DIR"

echo "==> determinism audit smoke: --jobs digest identity + perturbation self-test"
DIG_DIR="$(mktemp -d)"
cargo run -q -p cdnc-experiments --release -- fig14 --scale smoke --obs --digest --health --obs-dir "$DIG_DIR/serial"
cargo run -q -p cdnc-experiments --release -- fig14 --scale smoke --obs --digest --obs-dir "$DIG_DIR/jobs4" --jobs 4
# The chained digest is part of the artifact set: obs-diff compares the
# .digest.json files bit-for-bit (health heartbeats are wall-clock and
# skipped), so this fails if --jobs 4 perturbs the event order.
cargo run -q -p cdnc-experiments --release -- obs-diff "$DIG_DIR/serial" "$DIG_DIR/jobs4"
# End-to-end fault-localization self-test: inject a single-event
# perturbation, bisect, and require the exact injected index back.
cargo run -q -p cdnc-experiments --release -- fig14 --scale smoke --digest --digest-perturb 123 --obs-dir "$DIG_DIR/perturbed"
if cargo run -q -p cdnc-experiments --release -- divergence "$DIG_DIR/serial/fig14.digest.json" "$DIG_DIR/perturbed/fig14.digest.json" > "$DIG_DIR/divergence.txt"; then
  echo "divergence: a perturbed run compared identical"; exit 1
fi
grep -q 'first diverging event: global index 123 (segment 0' "$DIG_DIR/divergence.txt"
# The heartbeat left a final finished heartbeat and watch renders it.
test -s "$DIG_DIR/serial/fig14.health.json"
cargo run -q -p cdnc-experiments --release -- watch "$DIG_DIR/serial" --once | grep -q 'done'
rm -rf "$DIG_DIR"

echo "==> paired-run time-profiling determinism"
cargo test -p cdnc-experiments --test timeprof_determinism --quiet

echo "==> perf + memory-curve regression vs committed baseline"
BENCH_DIR="$(mktemp -d)"
cargo run -q -p cdnc-experiments --release -- bench --scale smoke --scale-sweep --label ci --out "$BENCH_DIR/BENCH_ci.json"
# Generous per-stage threshold: catch gross regressions, not machine noise.
# The scale-curve check is threshold-independent: it fails on super-linear
# rss-per-node growth even when every individual point is under threshold.
cargo run -q -p cdnc-experiments --release -- bench-diff BENCH_baseline.json "$BENCH_DIR/BENCH_ci.json" --threshold 4.0
rm -rf "$BENCH_DIR"

echo "CI gate passed."
